// Package faults injects the failure model self-stabilization is built
// for: transient faults that corrupt register contents arbitrarily (but
// keep each variable inside its domain). A scenario is a sequence of fault
// bursts; after each burst the protocol must re-stabilize on its own —
// Theorem 1 promises it always does, and the experiments measure how fast.
//
// The injector is protocol-agnostic: corrupted values are drawn from the
// protocol's own per-vertex state domains via RandomState, exactly the
// paper's "arbitrary initial configuration" after each burst.
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"specstab/internal/scenario"
	"specstab/internal/sim"
)

// Corrupt returns a copy of c with k distinct randomly chosen registers
// replaced by arbitrary domain values. k is clamped to [0, n]. Note that a
// corrupted register may coincidentally receive its old value — transient
// faults are allowed to be harmless.
func Corrupt[S comparable](p sim.Protocol[S], c sim.Config[S], k int, rng *rand.Rand) sim.Config[S] {
	out := c.Clone()
	n := p.N()
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	for _, v := range perm[:k] {
		out[v] = p.RandomState(v, rng)
	}
	return out
}

// Burst is one fault event in a scenario.
type Burst struct {
	// AfterSteps: run this many steps before the burst fires (counted
	// from the previous burst's recovery measurement start).
	AfterSteps int
	// CorruptVertices: number of registers the burst corrupts.
	CorruptVertices int
}

// Recovery reports the re-stabilization that followed one burst.
type Recovery struct {
	// Recovered is true when the legitimacy predicate held again within
	// the horizon.
	Recovered bool
	// StepsToLegit and MovesToLegit count from the burst to re-entry.
	StepsToLegit int
	MovesToLegit int
	// SafetyViolations counts configurations violating the safety
	// predicate during recovery (the window self-stabilization cannot
	// protect; it must be 0 from re-entry on).
	SafetyViolations int
	// ViolationAfterLegit reports a safety violation after re-entry —
	// a closure failure, which must never happen.
	ViolationAfterLegit bool
}

// Scenario runs a fault-injection campaign.
type Scenario[S comparable] struct {
	// Protocol and NewDaemon build the system; a fresh daemon is used for
	// each recovery phase so stateful schedulers cannot leak across
	// bursts.
	Protocol  sim.Protocol[S]
	NewDaemon func() sim.Daemon[S]
	// Legit is the legitimacy predicate (required); Safe the safety
	// predicate (optional, defaults to Legit).
	Legit func(sim.Config[S]) bool
	Safe  func(sim.Config[S]) bool
	// HorizonSteps bounds each recovery phase.
	HorizonSteps int
	// Engine selects the execution backend and shard workers of the
	// recovery engines (zero value = automatic backend). Campaigns are
	// bitwise identical for every choice.
	Engine scenario.EngineSpec
}

// Run starts from initial, lets the system stabilize once, then applies
// each burst in turn, measuring every recovery. All randomness (burst
// targets, corrupted values, daemon choices) derives from seed.
func (s Scenario[S]) Run(initial sim.Config[S], bursts []Burst, seed int64) ([]Recovery, error) {
	if s.Protocol == nil || s.NewDaemon == nil || s.Legit == nil {
		return nil, errors.New("faults: Protocol, NewDaemon and Legit are required")
	}
	safe := s.Safe
	if safe == nil {
		safe = s.Legit
	}
	rng := rand.New(rand.NewSource(seed))

	cfg := initial.Clone()
	// Initial stabilization (not reported: it is the E2/E3 measurement).
	var err error
	cfg, _, err = s.recover(cfg, rng)
	if err != nil {
		return nil, err
	}

	recoveries := make([]Recovery, 0, len(bursts))
	for i, b := range bursts {
		// Quiet period before the burst.
		e, err := scenario.NewEngine(s.Engine, s.Protocol, s.NewDaemon(), cfg, rng.Int63())
		if err != nil {
			return nil, err
		}
		if _, err := e.Run(b.AfterSteps, nil); err != nil {
			return nil, err
		}
		cfg = e.Snapshot()

		// The burst.
		cfg = Corrupt(s.Protocol, cfg, b.CorruptVertices, rng)

		// Recovery.
		next, rec, err := s.recover(cfg, rng)
		if err != nil {
			return nil, fmt.Errorf("faults: burst %d: %w", i, err)
		}
		cfg = next
		recoveries = append(recoveries, rec)
	}
	return recoveries, nil
}

// recover runs one recovery phase and scores it.
func (s Scenario[S]) recover(cfg sim.Config[S], rng *rand.Rand) (sim.Config[S], Recovery, error) {
	safe := s.Safe
	if safe == nil {
		safe = s.Legit
	}
	e, err := scenario.NewEngine(s.Engine, s.Protocol, s.NewDaemon(), cfg, rng.Int63())
	if err != nil {
		return nil, Recovery{}, err
	}
	rec := Recovery{}
	legitAt := -1
	inspect := func(step int) {
		c := e.Current()
		if legitAt < 0 && s.Legit(c) {
			legitAt = step
			rec.Recovered = true
			rec.StepsToLegit = step
			rec.MovesToLegit = e.Moves()
		}
		if !safe(c) {
			rec.SafetyViolations++
			if legitAt >= 0 {
				rec.ViolationAfterLegit = true
			}
		}
	}
	inspect(0)
	for step := 1; step <= s.HorizonSteps; step++ {
		progressed, err := e.Step()
		if err != nil {
			return nil, rec, err
		}
		if !progressed {
			break
		}
		inspect(step)
		if legitAt >= 0 && step >= legitAt+confirmTail {
			break
		}
	}
	return e.Snapshot(), rec, nil
}

// confirmTail is how many steps past re-entry each recovery keeps
// asserting safety (closure confirmation).
const confirmTail = 32
