package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"specstab/internal/scenario"
	"specstab/internal/sim"
	"specstab/internal/stats"
	"specstab/internal/telemetry"
)

// RunOptions configures one grid execution.
type RunOptions struct {
	// Pool bounds the cell×trial fan-out; results are identical for
	// every worker count.
	Pool Pool
	// Engine, when non-nil, replaces every cell's engine spec — the
	// backend/workers override of the drivers' command lines. Executions
	// are identical either way; only the cost changes.
	Engine *scenario.EngineSpec
	// Checkpoint is the journal path ("" = no checkpointing): one JSON
	// line per completed cell, keyed by cell fingerprint. A rerun loads
	// it, replays completed cells from their recorded samples and
	// executes only the rest — resume after interruption.
	Checkpoint string
	// CSV, when set, receives the result table as streaming CSV: the
	// header immediately, each row as its cell completes (in grid order).
	CSV io.Writer
	// JSONL, when set, receives one JSON object per completed row.
	JSONL io.Writer
	// Telemetry, when set, receives live grid progress — cells
	// done/total/resumed gauges, per-cell fingerprint events, checkpoint
	// lag — published from the fold, which runs on the caller goroutine
	// in strict grid order (internal/telemetry's campaign surface). The
	// hub is campaign-level only; cell trials never share it.
	Telemetry *telemetry.Hub
}

// Row is one aggregated grid row.
type Row struct {
	// Labels are the axis coordinates.
	Labels []string `json:"labels"`
	// Values are the aggregated metric columns, metric-major.
	Values []float64 `json:"values"`
	// Fingerprint is the cell's checkpoint key (hex).
	Fingerprint string `json:"fp"`
}

// Result is one executed campaign.
type Result struct {
	// Columns is the full stable column list: axes, then "trials", then
	// one column per metric × reduce statistic.
	Columns []string
	// Rows are the aggregated cells in grid order.
	Rows []Row
	// Table renders the result with the campaign name as title and the
	// fit/doc notes attached.
	Table *stats.Table
	// Resumed counts cells replayed from the checkpoint journal.
	Resumed int
}

// journalLine is one checkpoint record.
type journalLine struct {
	Fingerprint string      `json:"fp"`
	Labels      []string    `json:"labels"`
	Samples     [][]float64 `json:"samples"`
}

// Run expands the grid, executes every pending cell × trial on the pool
// and folds the aggregated rows in grid order. Trial t of a cell executes
// the cell's scenario with seed + t·seedStride; all randomness derives
// from that seed, so the whole table is deterministic for every backend
// and worker count (the invariance tests pin this).
func (c *Campaign) Run(opts RunOptions) (*Result, error) {
	cells, err := c.Cells()
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign: empty grid")
	}
	// Metric names resolve against cell 0's shape; the shape check runs
	// against every cell, since an axis can add or null out the workload
	// or storm of individual cells.
	metricNames := c.resolvedMetrics(cells[0].Scenario)
	metrics, err := checkMetrics(metricNames, cells[0].Scenario)
	if err != nil {
		return nil, err
	}
	for _, cell := range cells[1:] {
		if _, err := checkMetrics(metricNames, cell.Scenario); err != nil {
			return nil, fmt.Errorf("cell %s: %w", cellName(cell.Labels), err)
		}
	}
	reducers := make([]*reducerEntry, 0, len(c.resolvedReduce()))
	for _, name := range c.resolvedReduce() {
		r, err := reducerLookup(name)
		if err != nil {
			return nil, err
		}
		reducers = append(reducers, r)
	}
	axisNames, err := c.AxisNames()
	if err != nil {
		return nil, err
	}
	if err := c.checkFit(axisNames, metricNames, cells); err != nil {
		return nil, err
	}

	columns := append(append([]string{}, axisNames...), "trials")
	for _, m := range metrics {
		for _, r := range reducers {
			if len(reducers) == 1 {
				columns = append(columns, m.name)
			} else {
				columns = append(columns, m.name+"/"+r.name)
			}
		}
	}

	cached, journal, err := c.openJournal(opts.Checkpoint)
	if err != nil {
		return nil, err
	}
	if journal != nil {
		defer journal.Close()
	}

	trials := c.trials()
	counts := make([]int, len(cells))
	resumed := 0
	for i, cell := range cells {
		if samples, hit := cached[cell.Fingerprint]; hit && len(samples) == trials {
			resumed++
		} else {
			counts[i] = trials
		}
	}

	title := c.Name
	if title == "" {
		title = "campaign"
	}
	table := stats.NewTable(title, columns...)
	if opts.CSV != nil {
		writeCSVRow(opts.CSV, columns)
	}

	res := &Result{Columns: columns, Table: table, Resumed: resumed}
	progress := telemetry.NewProgress(opts.Telemetry, len(cells), resumed)
	// One persistent shard pool shared by every cell×trial engine of the
	// sweep: the engines' parallel phases reuse the same worker
	// goroutines instead of starting a pool per engine. Pools never
	// change executions, so resumed and fresh cells stay comparable.
	shared := sim.NewPool(0)
	defer shared.Close()
	run := func(cell, trial int) ([]float64, error) {
		vals, err := c.runTrial(cells[cell], trial, metrics, opts.Engine, shared)
		if err != nil {
			return nil, fmt.Errorf("campaign: cell %s trial %d: %w", cellName(cells[cell].Labels), trial, err)
		}
		return vals, nil
	}
	fold := func(i int, samples [][]float64) error {
		cell := cells[i]
		fresh := counts[i] > 0
		if !fresh {
			samples = cached[cell.Fingerprint]
		}
		row := Row{
			Labels:      cell.Labels,
			Fingerprint: fmt.Sprintf("%016x", cell.Fingerprint),
		}
		for mi := range metrics {
			series := make([]float64, len(samples))
			for t := range samples {
				series[t] = samples[t][mi]
			}
			for _, r := range reducers {
				row.Values = append(row.Values, r.fn(series))
			}
		}
		res.Rows = append(res.Rows, row)
		cellsRow := make([]any, 0, len(columns))
		for _, l := range cell.Labels {
			cellsRow = append(cellsRow, l)
		}
		cellsRow = append(cellsRow, trials)
		for _, v := range row.Values {
			cellsRow = append(cellsRow, v)
		}
		table.AddRow(cellsRow...)
		if opts.CSV != nil {
			writeCSVRow(opts.CSV, table.Rows[len(table.Rows)-1])
		}
		if opts.JSONL != nil {
			if err := json.NewEncoder(opts.JSONL).Encode(row); err != nil {
				return err
			}
		}
		journaled := false
		if journal != nil && fresh {
			line := journalLine{Fingerprint: row.Fingerprint, Labels: cell.Labels, Samples: samples}
			if err := json.NewEncoder(journal).Encode(line); err != nil {
				return fmt.Errorf("campaign: checkpoint write: %w", err)
			}
			journaled = true
		}
		// Resumed cells count as journaled: their samples are already in
		// the journal, so they carry no checkpoint lag.
		progress.CellDone(cell.Labels, row.Fingerprint, journaled || !fresh)
		return nil
	}
	if err := forCells(opts.Pool, counts, run, fold); err != nil {
		return nil, err
	}

	if c.Doc != "" {
		table.AddNote("%s", c.Doc)
	}
	if err := c.addFitNotes(res, axisNames, metricNames, len(reducers)); err != nil {
		return nil, err
	}
	return res, nil
}

// runTrial builds and executes one cell trial and extracts the metrics.
func (c *Campaign) runTrial(cell Cell, trial int, metrics []*metricEntry, engine *scenario.EngineSpec, pool *sim.Pool) ([]float64, error) {
	sc := *cell.Scenario
	sc.Seed += int64(trial) * c.seedStride()
	if engine != nil {
		sc.Engine = *engine
	}
	// Cells are expanded by JSON re-decode, so the runtime pool handle is
	// injected here, after the engine override — it cannot ride the spec.
	sc.Engine.Pool = pool
	r, err := scenario.Build(&sc)
	if err != nil {
		return nil, err
	}
	for _, m := range metrics {
		if m.kind == metricLegit && r.Probes().Legitimate == nil {
			return nil, fmt.Errorf("metric %q needs a legitimacy predicate, protocol %q has none", m.name, sc.Protocol.Name)
		}
	}
	if err := r.Execute(); err != nil {
		return nil, err
	}
	vals := make([]float64, len(metrics))
	for i, m := range metrics {
		vals[i] = m.extract(r)
	}
	return vals, nil
}

// openJournal loads the checkpoint journal (ignoring lines that fail to
// parse — a kill mid-write truncates at most the last line) and opens it
// for appending.
func (c *Campaign) openJournal(path string) (map[uint64][][]float64, *os.File, error) {
	if path == "" {
		return nil, nil, nil
	}
	cached := map[uint64][][]float64{}
	data, readErr := os.ReadFile(path)
	if readErr == nil {
		for _, raw := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(raw) == "" {
				continue
			}
			var line journalLine
			if err := json.Unmarshal([]byte(raw), &line); err != nil {
				continue
			}
			fp, err := strconv.ParseUint(line.Fingerprint, 16, 64)
			if err != nil {
				continue
			}
			cached[fp] = line.Samples
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	// A kill mid-write can leave an unterminated last line; start the
	// first append on a fresh line so the torn record never swallows it.
	if readErr == nil && len(data) > 0 && data[len(data)-1] != '\n' {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
		}
	}
	return cached, f, nil
}

// checkFit validates the fit spec before anything runs: the axis must
// exist with numeric labels on every cell, the metric must be requested.
func (c *Campaign) checkFit(axisNames, metricNames []string, cells []Cell) error {
	if c.Fit == nil {
		return nil
	}
	ai := indexOf(axisNames, c.Fit.Axis)
	if ai < 0 {
		return fmt.Errorf("campaign: fit axis %q is not an axis (have: %s)", c.Fit.Axis, strings.Join(axisNames, ", "))
	}
	if indexOf(metricNames, c.Fit.Metric) < 0 {
		return fmt.Errorf("campaign: fit metric %q is not a requested metric (have: %s)", c.Fit.Metric, strings.Join(metricNames, ", "))
	}
	for _, cell := range cells {
		if _, err := strconv.ParseFloat(cell.Labels[ai], 64); err != nil {
			return fmt.Errorf("campaign: fit axis %q has non-numeric label %q", c.Fit.Axis, cell.Labels[ai])
		}
	}
	return nil
}

// addFitNotes fits metric ≈ c·axis^k per group of the remaining axes and
// appends one note per group.
func (c *Campaign) addFitNotes(res *Result, axisNames, metricNames []string, nReduce int) error {
	if c.Fit == nil {
		return nil
	}
	ai := indexOf(axisNames, c.Fit.Axis)
	mi := indexOf(metricNames, c.Fit.Metric)
	col := mi * nReduce // first reduce column of the metric

	type group struct {
		key    string
		xs, ys []float64
	}
	var groups []*group
	byKey := map[string]*group{}
	for _, row := range res.Rows {
		var parts []string
		for i, l := range row.Labels {
			if i != ai {
				parts = append(parts, l)
			}
		}
		key := strings.Join(parts, "×")
		g := byKey[key]
		if g == nil {
			g = &group{key: key}
			byKey[key] = g
			groups = append(groups, g)
		}
		x, _ := strconv.ParseFloat(row.Labels[ai], 64)
		g.xs = append(g.xs, x)
		g.ys = append(g.ys, row.Values[col])
	}
	for _, g := range groups {
		fit, err := stats.FitPower(g.xs, g.ys)
		if err != nil {
			res.Table.AddNote("fit %s: %s vs %s has no usable points (%v)", g.key, c.Fit.Metric, c.Fit.Axis, err)
			continue
		}
		label := g.key
		if label == "" {
			label = c.Name
		}
		res.Table.AddNote("fit %s: %s ~ %s^%.2f (R²=%.3f)", label, c.Fit.Metric, c.Fit.Axis, fit.Exponent, fit.R2)
	}
	return nil
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if strings.EqualFold(x, want) {
			return i
		}
	}
	return -1
}

// writeCSVRow streams one CSV row with the table renderer's quoting.
func writeCSVRow(w io.Writer, cells []string) {
	t := stats.Table{Columns: cells}
	io.WriteString(w, t.CSV())
}
