package main

// Smoke tests: flag parsing and one tiny fault campaign.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTinyCampaign(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topology", "ring", "-n", "6", "-daemon", "sync", "-bursts", "2", "-corrupt", "3", "-quiet", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fault campaign", "recoveries", "re-stabilization"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRunServiceCampaign(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topology", "ring", "-n", "8", "-daemon", "sync", "-bursts", "2", "-service"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"service fault campaign", "client-observed recoveries", "stall ticks", "service totals", "grants/tick"} {
		if !strings.Contains(s, want) {
			t.Fatalf("service report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Fatalf("service campaign reports a failed recovery:\n%s", s)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-daemon", "nonsense"}, &out); err == nil {
		t.Fatal("want error for unknown daemon")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("want error for unknown flag")
	}
}
