package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// StepInfo describes one executed step for hooks and traces.
type StepInfo struct {
	// Step is the 1-based index of the transition just executed.
	Step int
	// Activated lists the vertices that fired, in increasing order.
	Activated []int
	// Rules[i] is the rule fired by Activated[i].
	Rules []Rule
}

// Hook observes executed steps. The Activated/Rules slices are reused
// between steps; copy them if retained.
type Hook func(StepInfo)

// Engine drives one execution of a protocol under a daemon from a given
// initial configuration. It is deliberately sequential and deterministic:
// given the same protocol, daemon, initial configuration and seed, it
// replays the same execution (daemon randomness is drawn from the engine's
// seeded generator).
type Engine[S comparable] struct {
	p   Protocol[S]
	d   Daemon[S]
	cfg Config[S]
	rng *rand.Rand

	steps int
	moves int
	hook  Hook

	// Round accounting: a round is a minimal execution segment in which
	// every vertex enabled at the segment's start is activated or
	// observed disabled — the standard asynchronous time measure of the
	// self-stabilization literature. owed tracks the vertices from the
	// current round's start that have not yet been discharged.
	rounds    int
	owed      []bool
	owedCount int

	// Scratch buffers reused across steps.
	enabled  []int
	selected []int
	rules    []Rule
	next     []S
}

// NewEngine creates an engine executing p under d starting from initial.
// The initial configuration is cloned; seed fixes all daemon randomness.
func NewEngine[S comparable](p Protocol[S], d Daemon[S], initial Config[S], seed int64) (*Engine[S], error) {
	if err := Validate(p, initial); err != nil {
		return nil, err
	}
	e := &Engine[S]{
		p:       p,
		d:       d,
		cfg:     initial.Clone(),
		rng:     rand.New(rand.NewSource(seed)),
		owed:    make([]bool, p.N()),
		enabled: make([]int, 0, p.N()),
	}
	e.startRound()
	return e, nil
}

// startRound charges the current enabled set to the new round.
func (e *Engine[S]) startRound() {
	e.owedCount = 0
	for v := range e.owed {
		e.owed[v] = false
	}
	for _, v := range Enabled(e.p, e.cfg, e.enabled[:0]) {
		e.owed[v] = true
		e.owedCount++
	}
}

// settleRound discharges owed vertices after a step: a vertex is settled
// once it has been activated or is observed disabled. When all are
// settled, a round completes and the next one is charged.
func (e *Engine[S]) settleRound(activated []int) {
	for _, v := range activated {
		if e.owed[v] {
			e.owed[v] = false
			e.owedCount--
		}
	}
	if e.owedCount > 0 {
		for v := range e.owed {
			if !e.owed[v] {
				continue
			}
			if _, ok := e.p.EnabledRule(e.cfg, v); !ok {
				e.owed[v] = false
				e.owedCount--
			}
		}
	}
	if e.owedCount == 0 {
		e.rounds++
		e.startRound()
	}
}

// MustEngine is NewEngine for statically correct inputs; it panics on error.
func MustEngine[S comparable](p Protocol[S], d Daemon[S], initial Config[S], seed int64) *Engine[S] {
	e, err := NewEngine(p, d, initial, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// Protocol returns the protocol under execution.
func (e *Engine[S]) Protocol() Protocol[S] { return e.p }

// Daemon returns the driving daemon.
func (e *Engine[S]) Daemon() Daemon[S] { return e.d }

// Current returns the live configuration. It is shared with the engine and
// must be treated as read-only; use Snapshot for an owned copy.
func (e *Engine[S]) Current() Config[S] { return e.cfg }

// Snapshot returns an independent copy of the current configuration.
func (e *Engine[S]) Snapshot() Config[S] { return e.cfg.Clone() }

// Steps returns the number of transitions executed so far.
func (e *Engine[S]) Steps() int { return e.steps }

// Moves returns the total number of vertex activations executed so far.
func (e *Engine[S]) Moves() int { return e.moves }

// Rounds returns the number of completed asynchronous rounds: execution
// segments in which every vertex enabled at the segment start fired or
// became disabled. Under the synchronous daemon every step is one round.
func (e *Engine[S]) Rounds() int { return e.rounds }

// SetHook installs a step observer (nil removes it).
func (e *Engine[S]) SetHook(h Hook) { e.hook = h }

// Enabled recomputes and returns the enabled vertices of the current
// configuration; the slice is reused by the engine.
func (e *Engine[S]) Enabled() []int {
	e.enabled = Enabled(e.p, e.cfg, e.enabled)
	return e.enabled
}

// ErrDaemonSelection reports a daemon returning an empty or invalid
// selection — a bug in the daemon, not a property of the protocol.
var ErrDaemonSelection = errors.New("sim: daemon returned an invalid selection")

// Step executes one transition. It returns false when the configuration is
// terminal (no enabled vertex), which for perpetual specifications is
// itself a reportable anomaly. The error path only triggers on misbehaving
// daemons.
//
// All activated vertices read the same pre-state γ and write γ′ together,
// which is exactly the paper's notion of an action: the engine first
// computes every next state from the unmodified configuration, then
// commits them.
func (e *Engine[S]) Step() (bool, error) {
	enabled := e.Enabled()
	if len(enabled) == 0 {
		return false, nil
	}
	sel := e.d.Select(e.cfg, enabled, e.rng)
	if len(sel) == 0 {
		return false, fmt.Errorf("%w: empty selection by %s", ErrDaemonSelection, e.d.Name())
	}
	e.selected = append(e.selected[:0], sel...)
	e.rules = e.rules[:0]
	e.next = e.next[:0]
	for _, v := range e.selected {
		r, ok := e.p.EnabledRule(e.cfg, v)
		if !ok {
			return false, fmt.Errorf("%w: %s selected disabled vertex %d", ErrDaemonSelection, e.d.Name(), v)
		}
		e.rules = append(e.rules, r)
		e.next = append(e.next, e.p.Apply(e.cfg, v, r))
	}
	for i, v := range e.selected {
		e.cfg[v] = e.next[i]
	}
	e.steps++
	e.moves += len(e.selected)
	e.settleRound(e.selected)
	if e.hook != nil {
		e.hook(StepInfo{Step: e.steps, Activated: e.selected, Rules: e.rules})
	}
	return true, nil
}

// Run executes at most maxSteps transitions, stopping early when until
// (optional) returns true for the current configuration or when a terminal
// configuration is reached. It returns the number of steps executed by
// this call.
func (e *Engine[S]) Run(maxSteps int, until func(Config[S]) bool) (int, error) {
	done := 0
	for done < maxSteps {
		if until != nil && until(e.cfg) {
			return done, nil
		}
		progressed, err := e.Step()
		if err != nil {
			return done, err
		}
		if !progressed {
			return done, nil
		}
		done++
	}
	return done, nil
}
