package experiments

import (
	"specstab/internal/campaign"
	"specstab/internal/daemon"
	"specstab/internal/sim"
	"specstab/internal/stats"
	"specstab/internal/unison"
)

// E7Unison exercises the substrate SSME stands on: the self-stabilizing
// asynchronous unison of Boulinier–Petit–Villain. Two bounds the paper
// leans on are measured: the synchronous stabilization within
// α + lcp(g) + diam(g) steps (used in Case 3 of Theorem 2's proof) and the
// Devismes–Petit move bound under unfair daemons (used in Theorem 3) —
// with both the paper's safe parameters (α = n) and the minimal parameters
// the underlying theory allows (α = hole−2, K = cyclo+1).
//
// The grid is topology × parameter family; each cell fans out its
// synchronous trials and the trials of its three ud daemons together
// (grouped by trailing index ranges), with all initial configurations
// drawn at expansion time.
func E7Unison(cfg RunConfig) ([]*stats.Table, error) {
	trials := cfg.pick(10, 40)
	udTrials := cfg.pick(2, 5)
	table := stats.NewTable(
		"E7 — asynchronous unison: measured vs proven bounds (worst over trials)",
		"graph", "params", "sync worst", "α+lcp+diam", "ud worst moves", "Devismes–Petit bound", "ok",
	)

	udDaemons := func(u *unison.Protocol) []func() sim.Daemon[int] {
		return []func() sim.Daemon[int]{
			func() sim.Daemon[int] { return daemon.NewRandomCentral[int]() },
			func() sim.Daemon[int] { return daemon.NewDistributed[int](0.4) },
			func() sim.Daemon[int] { return daemon.NewGreedyCentral[int](u, u.DisorderPotential) },
		}
	}

	type cell struct {
		u          *unison.Protocol
		gname      string
		pname      string
		syncBound  int
		udBound    int
		syncInit   []sim.Config[int]
		udInit     [][]sim.Config[int] // per ud daemon, per trial
		udFactorys []func() sim.Daemon[int]
	}
	var cells []cell
	for _, g := range zoo(cfg) {
		for _, params := range []struct {
			name string
			x    func() (p *unison.Protocol, err error)
		}{
			{"safe α=n", func() (*unison.Protocol, error) { return unison.New(g, unison.SafeParams(g)) }},
			{"minimal", func() (*unison.Protocol, error) { return unison.New(g, unison.MinimalParams(g)) }},
		} {
			u, err := params.x()
			if err != nil {
				return nil, err
			}
			rng := cfg.rng(int64(13 * g.N()))
			syncInit := make([]sim.Config[int], trials)
			for t := range syncInit {
				syncInit[t] = sim.RandomConfig[int](u, rng)
			}
			factories := udDaemons(u)
			udInit := make([][]sim.Config[int], len(factories))
			for d := range factories {
				udInit[d] = make([]sim.Config[int], udTrials)
				for t := range udInit[d] {
					udInit[d][t] = sim.RandomConfig[int](u, rng)
				}
			}
			cells = append(cells, cell{
				u: u, gname: g.Name(), pname: params.name,
				syncBound: u.SyncHorizon(), udBound: u.UnfairHorizonMoves(),
				syncInit: syncInit, udInit: udInit, udFactorys: factories,
			})
		}
	}

	err := campaign.Sweep(cfg.pool(), cells,
		func(c cell) int { return trials + len(c.udFactorys)*udTrials },
		func(c cell, t int) (runOutcome, error) {
			if t < trials {
				e := mustNewEngine[int](cfg, c.u, daemon.NewSynchronous[int](), c.syncInit[t], 1)
				return measureRun(e, c.syncBound, c.u.Clock().K, c.u.Legitimate, c.u.Legitimate)
			}
			d := (t - trials) / udTrials
			ut := (t - trials) % udTrials
			e := mustNewEngine[int](cfg, c.u, c.udFactorys[d](), c.udInit[d][ut], int64(ut+1))
			return measureRun(e, c.udBound, c.u.Clock().K, c.u.Legitimate, c.u.Legitimate)
		},
		func(c cell, outs []runOutcome) error {
			worstSync := 0
			for _, out := range outs[:trials] {
				if !out.legitReached {
					worstSync = c.syncBound + 1 // visible violation
					break
				}
				if out.legitSteps > worstSync {
					worstSync = out.legitSteps
				}
			}
			worstMoves := 0
			for d := range c.udFactorys {
				group := outs[trials+d*udTrials : trials+(d+1)*udTrials]
				for _, out := range group {
					if !out.legitReached {
						worstMoves = c.udBound + 1
						break
					}
					if out.legitMoves > worstMoves {
						worstMoves = out.legitMoves
					}
				}
			}
			table.AddRow(c.gname, c.pname, worstSync, c.syncBound, worstMoves, c.udBound,
				ok(worstSync <= c.syncBound && worstMoves <= c.udBound))
			return nil
		})
	if err != nil {
		return nil, err
	}
	table.AddNote("sync measurements use the legitimacy predicate Γ₁ for both safety and legitimacy: unison's spec is Γ₁ membership itself")
	return []*stats.Table{table}, nil
}
