// Command ssme runs the paper's mutual-exclusion protocol on a chosen
// topology under a chosen daemon and reports the observed stabilization
// against the paper's bounds, optionally with an execution trace.
//
// Examples:
//
//	ssme -topology ring -n 12 -daemon sync -init worst -trace 1
//	ssme -topology grid -n 12 -daemon distributed -p 0.5 -init random
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"specstab/internal/cli"
	"specstab/internal/core"
	"specstab/internal/sim"
	"specstab/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssme:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topology   = flag.String("topology", "ring", "topology: "+cli.Topologies)
		n          = flag.Int("n", 12, "number of vertices")
		daemonName = flag.String("daemon", "sync", "daemon: "+cli.Daemons)
		prob       = flag.Float64("p", 0.5, "activation probability of the distributed daemon")
		initMode   = flag.String("init", "random", "initial configuration: random, worst (Theorem 4 islands), uniform")
		seed       = flag.Int64("seed", 1, "random seed")
		traceEvery = flag.Int("trace", 0, "print a trace every N steps (0 disables)")
		maxSteps   = flag.Int("steps", 0, "step budget (0 = protocol service window)")
	)
	flag.Parse()

	g, err := cli.ParseTopology(*topology, *n, *seed)
	if err != nil {
		return err
	}
	p, err := core.New(g)
	if err != nil {
		return err
	}
	d, err := cli.ParseDaemon[int](*daemonName, g.N(), *prob)
	if err != nil {
		return err
	}

	var initial sim.Config[int]
	switch *initMode {
	case "random":
		initial = sim.RandomConfig[int](p, rand.New(rand.NewSource(*seed)))
	case "worst":
		initial, err = p.WorstSyncConfig()
	case "uniform":
		initial, err = p.UniformConfig(0)
	default:
		err = fmt.Errorf("unknown -init %q (random, worst, uniform)", *initMode)
	}
	if err != nil {
		return err
	}

	fmt.Printf("graph     : %s\n", g)
	fmt.Printf("clock     : %s\n", p.Clock())
	fmt.Printf("daemon    : %s\n", d.Name())
	fmt.Printf("bounds    : sync ⌈diam/2⌉ = %d steps; unfair ≤ %d moves; Γ₁ by 2n+diam = %d sync steps\n",
		core.SyncBound(g), p.UnfairBoundMoves(), p.SyncUnisonHorizon())

	horizon := p.ServiceWindow()
	if *maxSteps > 0 {
		horizon = *maxSteps
	}

	e, err := sim.NewEngine[int](p, d, initial, *seed)
	if err != nil {
		return err
	}
	var rec *trace.Recorder[int]
	if *traceEvery > 0 {
		rec = trace.NewRecorder[int](*traceEvery)
		rec.Watch(e)
	}
	rep, err := sim.MeasureConvergence(e, horizon, p.SafeME, p.Legitimate)
	if err != nil {
		return err
	}

	fmt.Printf("\nexecution : %d steps, %d moves (horizon %d)\n", rep.StepsExecuted, rep.MovesExecuted, horizon)
	fmt.Printf("conv time : %d steps (last double privilege at step %d)\n", rep.ConvergenceSteps, rep.LastViolationStep)
	fmt.Printf("Γ₁ entry  : step %d (%d moves)\n", rep.FirstLegitStep, rep.FirstLegitMoves)
	fmt.Printf("closure   : broken=%v\n", rep.ClosureBroken)
	if d.Name() == "sd" {
		status := "within bound"
		if rep.ConvergenceSteps > core.SyncBound(g) {
			status = "BOUND VIOLATED"
		}
		fmt.Printf("Theorem 2 : measured %d ≤ %d — %s\n", rep.ConvergenceSteps, core.SyncBound(g), status)
	}
	if rec != nil {
		fmt.Printf("\n%s\n", trace.PrivilegeTimeline[int](rec, g.N(), p.Privileged))
		fmt.Println(trace.IntStrip(rec, g.N()))
	}
	return nil
}
