// Package daemon implements the adversaries (daemons) of Definitions 1–2:
// the synchronous daemon sd, central daemons cd under several scheduling
// policies, probabilistic distributed daemons, and greedy look-ahead
// adversaries used to approximate the unfair distributed daemon ud from
// below when measuring worst-case stabilization times.
//
// The partial order of Definition 2 ("d′ more powerful than d" iff every
// execution allowed by d is allowed by d′") is reflected here structurally:
// every daemon in this package selects a non-empty subset of the enabled
// vertices, hence every execution any of them produces is allowed by ud —
// they are all ≺ ud, and measuring under them lower-bounds conv_time(π, ud).
// sd is the deterministic daemon selecting all enabled vertices; cd selects
// exactly one.
package daemon

import (
	"fmt"
	"math/rand"

	"specstab/internal/sim"
)

// Synchronous is the synchronous daemon sd: every enabled vertex fires at
// every step. It is deterministic, so a protocol has exactly one
// synchronous execution per initial configuration — the fact both Theorem 2
// and the Section 5 lower bound exploit.
type Synchronous[S comparable] struct{}

// NewSynchronous returns the synchronous daemon.
func NewSynchronous[S comparable]() Synchronous[S] { return Synchronous[S]{} }

// Name implements sim.Daemon.
func (Synchronous[S]) Name() string { return "sd" }

// Select implements sim.Daemon: all enabled vertices fire.
func (Synchronous[S]) Select(_ sim.Config[S], enabled []int, _ *rand.Rand) []int {
	return enabled
}

var _ sim.Daemon[int] = Synchronous[int]{}

// Chooser picks one vertex index out of a non-empty enabled list for a
// central daemon.
type Chooser[S comparable] func(c sim.Config[S], enabled []int, rng *rand.Rand) int

// Central is a central daemon cd: exactly one enabled vertex fires per
// step. The Chooser fixes the scheduling policy; since every choice
// sequence is a ud-execution, adversarial choosers are the main tool for
// probing worst-case move complexities (Theorem 3, Section 3 catalogue).
type Central[S comparable] struct {
	name   string
	choose Chooser[S]
}

// NewCentral builds a central daemon with an arbitrary policy.
func NewCentral[S comparable](name string, choose Chooser[S]) *Central[S] {
	return &Central[S]{name: name, choose: choose}
}

// Name implements sim.Daemon.
func (d *Central[S]) Name() string { return "cd/" + d.name }

// Select implements sim.Daemon.
func (d *Central[S]) Select(c sim.Config[S], enabled []int, rng *rand.Rand) []int {
	return []int{enabled[d.choose(c, enabled, rng)]}
}

var _ sim.Daemon[int] = (*Central[int])(nil)

// NewRandomCentral returns cd with uniformly random choices.
func NewRandomCentral[S comparable]() *Central[S] {
	return NewCentral("random", func(_ sim.Config[S], enabled []int, rng *rand.Rand) int {
		return rng.Intn(len(enabled))
	})
}

// NewMinIDCentral returns cd always activating the smallest enabled id.
func NewMinIDCentral[S comparable]() *Central[S] {
	return NewCentral("min-id", func(_ sim.Config[S], _ []int, _ *rand.Rand) int {
		return 0
	})
}

// NewMaxIDCentral returns cd always activating the largest enabled id.
func NewMaxIDCentral[S comparable]() *Central[S] {
	return NewCentral("max-id", func(_ sim.Config[S], enabled []int, _ *rand.Rand) int {
		return len(enabled) - 1
	})
}

// RoundRobin is a central daemon cycling fairly through vertex ids: at each
// step it fires the first enabled vertex strictly after the previously
// activated one (in circular id order). It is a weakly fair instance of cd.
type RoundRobin[S comparable] struct {
	n    int
	last int
}

// NewRoundRobin returns a round-robin central daemon for n vertices.
func NewRoundRobin[S comparable](n int) *RoundRobin[S] {
	return &RoundRobin[S]{n: n, last: n - 1}
}

// Name implements sim.Daemon.
func (d *RoundRobin[S]) Name() string { return "cd/round-robin" }

// Select implements sim.Daemon.
func (d *RoundRobin[S]) Select(_ sim.Config[S], enabled []int, _ *rand.Rand) []int {
	// enabled is sorted; find first id > last, wrapping around.
	for _, v := range enabled {
		if v > d.last {
			d.last = v
			return []int{v}
		}
	}
	d.last = enabled[0]
	return []int{enabled[0]}
}

var _ sim.Daemon[int] = (*RoundRobin[int])(nil)

// Distributed is the probabilistic distributed daemon: each enabled vertex
// fires independently with probability P; when the coin flips leave the
// selection empty, one enabled vertex is drawn uniformly so that the
// selection is non-empty as the model requires. P=1 coincides with sd.
type Distributed[S comparable] struct {
	// P is the per-vertex activation probability in (0, 1].
	P float64
}

// NewDistributed returns the p-distributed daemon.
func NewDistributed[S comparable](p float64) Distributed[S] {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("daemon: distributed activation probability %v outside (0,1]", p))
	}
	return Distributed[S]{P: p}
}

// Name implements sim.Daemon.
func (d Distributed[S]) Name() string { return fmt.Sprintf("ud/distributed-p%.2f", d.P) }

// Select implements sim.Daemon.
func (d Distributed[S]) Select(_ sim.Config[S], enabled []int, rng *rand.Rand) []int {
	out := make([]int, 0, len(enabled))
	for _, v := range enabled {
		if rng.Float64() < d.P {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = append(out, enabled[rng.Intn(len(enabled))])
	}
	return out
}

var _ sim.Daemon[int] = Distributed[int]{}
