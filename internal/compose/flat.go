package compose

// Flat composition (sim.Flat, DESIGN.md §6). The product packs component
// A's words and component B's words side by side in each vertex record —
// [a₀ … a_{Wa−1} b₀ … b_{Wb−1}] — and hands each component the same
// packed array with a shifted base offset. Projection therefore costs
// nothing: the stride/base calling convention of sim.Flat was designed
// exactly so that composite records need no copying.
//
// The capability is conditional (the sim flat-provider hook): the product
// is flat exactly when both components are flat AND both declare rule
// bounds, because the batch kernels translate component rule pairs
// through the pre-interned table — lock-free reads of an immutable
// snapshot, which is what makes the kernels safe under the engine's
// shard-parallel step.

import (
	"sync"

	"specstab/internal/sim"
)

// Flat implements the sim flat-capability hook.
func (p *Product[A, B]) Flat() (sim.Flat[Pair[A, B]], bool) {
	fa, fb := sim.FlatOf(p.a), sim.FlatOf(p.b)
	if fa == nil || fb == nil || !p.eager {
		return nil, false
	}
	pf := &productFlat[A, B]{p: p, fa: fa, fb: fb, wa: fa.FlatWords(), wb: fb.FlatWords()}
	pf.scratch.New = func() any { return &prodScratch{} }
	return pf, true
}

// productFlat is the product's packed codec.
type productFlat[A, B comparable] struct {
	p      *Product[A, B]
	fa     sim.Flat[A]
	fb     sim.Flat[B]
	wa, wb int

	// Pooled per-batch scratch: the batch kernels are invoked from
	// concurrent shards, so scratch is never shared.
	scratch sync.Pool
}

// prodScratch holds one batch invocation's working set.
type prodScratch struct {
	ra, rb   []sim.Rule // per-vertex component rules
	vsA, vsB []int      // compacted firing vertices per component
	rcA, rcB []sim.Rule // their rules, aligned with vsA/vsB
	posA     []int      // batch positions of vsA entries
	posB     []int
	outA     []int64 // component apply staging
	outB     []int64
}

// FlatWords implements sim.Flat: the concatenated record width.
func (pf *productFlat[A, B]) FlatWords() int { return pf.wa + pf.wb }

// EncodeState implements sim.Flat.
func (pf *productFlat[A, B]) EncodeState(v int, s Pair[A, B], dst []int64) {
	pf.fa.EncodeState(v, s.First, dst[:pf.wa])
	pf.fb.EncodeState(v, s.Second, dst[pf.wa:pf.wa+pf.wb])
}

// DecodeState implements sim.Flat.
func (pf *productFlat[A, B]) DecodeState(v int, src []int64) Pair[A, B] {
	return Pair[A, B]{
		First:  pf.fa.DecodeState(v, src[:pf.wa]),
		Second: pf.fb.DecodeState(v, src[pf.wa:pf.wa+pf.wb]),
	}
}

// DecodeStates implements sim.Flat (the batch shadow refresh).
func (pf *productFlat[A, B]) DecodeStates(st []int64, stride, base int, vs []int, cfg sim.Config[Pair[A, B]]) {
	for _, v := range vs {
		rec := st[v*stride+base:]
		cfg[v] = Pair[A, B]{
			First:  pf.fa.DecodeState(v, rec[:pf.wa]),
			Second: pf.fb.DecodeState(v, rec[pf.wa:pf.wa+pf.wb]),
		}
	}
}

// EnabledRuleFlat implements sim.Flat: both component kernels run over
// the shared packed array (B at base offset +Wa), and the rule pairs are
// translated through the pre-interned table.
func (pf *productFlat[A, B]) EnabledRuleFlat(st []int64, stride, base int, vs []int, rules []sim.Rule) {
	s := pf.scratch.Get().(*prodScratch)
	s.ra = grow(s.ra, len(vs))
	s.rb = grow(s.rb, len(vs))
	pf.fa.EnabledRuleFlat(st, stride, base, vs, s.ra)
	pf.fb.EnabledRuleFlat(st, stride, base+pf.wa, vs, s.rb)
	for i := range vs {
		if s.ra[i] == sim.NoRule && s.rb[i] == sim.NoRule {
			rules[i] = sim.NoRule
			continue
		}
		rules[i] = pf.p.internFast(s.ra[i], s.rb[i])
	}
	pf.scratch.Put(s)
}

// ApplyFlat implements sim.Flat: every record is first carried over
// unchanged, then each component's firing subset is applied compactly and
// its words scattered back — so a vertex firing only one component keeps
// the other component's words verbatim, exactly as the generic Apply.
func (pf *productFlat[A, B]) ApplyFlat(st []int64, stride, base int, vs []int, rules []sim.Rule, out []int64, outStride, outBase int) {
	w := pf.wa + pf.wb
	s := pf.scratch.Get().(*prodScratch)
	s.vsA, s.rcA, s.posA = s.vsA[:0], s.rcA[:0], s.posA[:0]
	s.vsB, s.rcB, s.posB = s.vsB[:0], s.rcB[:0], s.posB[:0]
	for i, v := range vs {
		copy(out[i*outStride+outBase:i*outStride+outBase+w], st[v*stride+base:v*stride+base+w])
		ra, rb := pf.p.DecodeRule(rules[i])
		if ra != sim.NoRule {
			s.vsA = append(s.vsA, v)
			s.rcA = append(s.rcA, ra)
			s.posA = append(s.posA, i)
		}
		if rb != sim.NoRule {
			s.vsB = append(s.vsB, v)
			s.rcB = append(s.rcB, rb)
			s.posB = append(s.posB, i)
		}
	}
	if len(s.vsA) > 0 {
		s.outA = grow(s.outA, len(s.vsA)*pf.wa)
		pf.fa.ApplyFlat(st, stride, base, s.vsA, s.rcA, s.outA, pf.wa, 0)
		for j, i := range s.posA {
			copy(out[i*outStride+outBase:i*outStride+outBase+pf.wa], s.outA[j*pf.wa:(j+1)*pf.wa])
		}
	}
	if len(s.vsB) > 0 {
		s.outB = grow(s.outB, len(s.vsB)*pf.wb)
		pf.fb.ApplyFlat(st, stride, base+pf.wa, s.vsB, s.rcB, s.outB, pf.wb, 0)
		for j, i := range s.posB {
			copy(out[i*outStride+outBase+pf.wa:i*outStride+outBase+w], s.outB[j*pf.wb:(j+1)*pf.wb])
		}
	}
	pf.scratch.Put(s)
}

var _ sim.Flat[Pair[int, int]] = (*productFlat[int, int])(nil)

// grow returns buf resized to length k, reallocating only when the
// capacity is insufficient (contents are overwritten by the caller).
func grow[T any](buf []T, k int) []T {
	if cap(buf) < k {
		return make([]T, k)
	}
	return buf[:k]
}
