// Command faultsim runs a transient-fault campaign against SSME: repeated
// bursts corrupting a chosen number of registers, each followed by
// autonomous re-stabilization, with per-burst recovery statistics.
//
// Example:
//
//	faultsim -topology grid -n 20 -daemon sync -bursts 10 -corrupt 10
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"specstab/internal/cli"
	"specstab/internal/core"
	"specstab/internal/faults"
	"specstab/internal/sim"
	"specstab/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topology   = flag.String("topology", "ring", "topology: "+cli.Topologies)
		n          = flag.Int("n", 12, "number of vertices")
		daemonName = flag.String("daemon", "sync", "daemon: "+cli.Daemons)
		prob       = flag.Float64("p", 0.5, "activation probability of the distributed daemon")
		bursts     = flag.Int("bursts", 5, "number of fault bursts")
		corrupt    = flag.Int("corrupt", 0, "registers corrupted per burst (0 = all)")
		quiet      = flag.Int("quiet", 8, "steps between bursts")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	g, err := cli.ParseTopology(*topology, *n, *seed)
	if err != nil {
		return err
	}
	p, err := core.New(g)
	if err != nil {
		return err
	}
	k := *corrupt
	if k <= 0 || k > g.N() {
		k = g.N()
	}

	horizon := p.ServiceWindow()
	if *daemonName != "sync" && *daemonName != "sd" {
		horizon = p.UnfairBoundMoves()
	}
	scenario := faults.Scenario[int]{
		Protocol: p,
		NewDaemon: func() sim.Daemon[int] {
			d, err := cli.ParseDaemon[int](*daemonName, g.N(), *prob)
			if err != nil {
				panic(err) // validated below before Run
			}
			return d
		},
		Legit:        p.Legitimate,
		Safe:         p.SafeME,
		HorizonSteps: horizon,
	}
	if _, err := cli.ParseDaemon[int](*daemonName, g.N(), *prob); err != nil {
		return err
	}

	burstList := make([]faults.Burst, *bursts)
	for i := range burstList {
		burstList[i] = faults.Burst{AfterSteps: *quiet, CorruptVertices: k}
	}

	fmt.Printf("fault campaign on %s under %s: %d bursts × %d corrupted registers\n\n",
		g, *daemonName, *bursts, k)
	initial := sim.RandomConfig[int](p, rand.New(rand.NewSource(*seed)))
	recs, err := scenario.Run(initial, burstList, *seed)
	if err != nil {
		return err
	}

	table := stats.NewTable("recoveries", "burst", "recovered", "steps", "moves", "safety violations pre-Γ₁", "closure")
	allOK := true
	for i, rec := range recs {
		okStr := "ok"
		if !rec.Recovered || rec.ViolationAfterLegit {
			okStr = "FAILED"
			allOK = false
		}
		table.AddRow(i+1, rec.Recovered, rec.StepsToLegit, rec.MovesToLegit, rec.SafetyViolations, okStr)
	}
	fmt.Println(table)
	if allOK {
		fmt.Println("every burst was followed by autonomous re-stabilization — Theorem 1 as a contract")
	} else {
		fmt.Println("RECOVERY FAILURE — this refutes Theorem 1 and is a bug worth reporting")
	}
	return nil
}
