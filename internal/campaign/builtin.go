package campaign

import (
	"fmt"
	"strings"

	"specstab/internal/scenario"
)

// Built-in campaigns, resolved by name (`specbench -campaign e13a-storm`).
// Each is an ordinary Campaign value — `specbench -campaign <name> -dump`
// prints the JSON, which is exactly what a user would write by hand; the
// checked-in examples/campaigns files are dumps of these grids with
// walkthrough comments in the adjacent README.

// builtinRegistry lists the built-in campaigns in presentation order.
var builtinRegistry = []*Campaign{e13aStorm(), stallCurve(), daemonSpectrum()}

// Builtins returns the built-in campaigns in presentation order.
func Builtins() []*Campaign { return builtinRegistry }

// BuiltinNames returns the built-in campaign names.
func BuiltinNames() []string {
	out := make([]string, len(builtinRegistry))
	for i, c := range builtinRegistry {
		out[i] = c.Name
	}
	return out
}

// ByName resolves a built-in campaign. The returned value is a copy:
// drivers override fields (seed, engine spec) on it, and the registry
// must survive unmutated for the next caller in the process.
func ByName(name string) (*Campaign, error) {
	for _, c := range builtinRegistry {
		if strings.EqualFold(c.Name, name) {
			cp := *c
			return &cp, nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown built-in %q (choose from: %s)", name, strings.Join(BuiltinNames(), ", "))
}

// e13aStorm is the E13a grid as data: lock × daemon under full-corruption
// storms, scored in client-observed and protocol-observed recovery. The
// lock axis carries the linked fields an independent-axis grid cannot —
// per-lock topology, storm horizons and the E13a trial-seed salt
// (base seed 1 → 1·1 000 003 + corrupt registers).
func e13aStorm() *Campaign {
	lock := func(label string, set map[string]any) Point { return Point{Label: label, Set: set} }
	return &Campaign{
		Name: "e13a-storm",
		Doc: "locks under live fault storms: client-observed (stall) vs protocol-observed (legit) recovery; " +
			"Dijkstra never stalls but serves unsafely while stabilizing, SSME stalls about one rotation with (almost) no unsafe tick",
		Base: scenario.Scenario{
			Seed:     1_000_011, // 1·1 000 003 + 8 corrupt registers, the E13a trial-seed salt
			Protocol: scenario.ProtocolSpec{Name: "ssme"},
			Topology: scenario.TopologySpec{Name: "ring", N: 8},
			Workload: &scenario.WorkloadSpec{Kind: "closed", ThinkMax: 3},
			Storm:    &scenario.StormSpec{Bursts: 1, Corrupt: 8, HorizonTicks: 696},
		},
		Axes: []Axis{
			{Name: "lock", Points: []Point{
				lock("ssme@ring-8", map[string]any{
					"protocol.name": "ssme", "topology.name": "ring", "topology.n": 8,
					"storm.corrupt": 8, "storm.horizonTicks": 696, "seed": 1_000_011,
				}),
				lock("ssme@grid-3x3", map[string]any{
					"protocol.name": "ssme", "topology.name": "grid", "topology.n": 9,
					"storm.corrupt": 9, "storm.horizonTicks": 784, "seed": 1_000_012,
				}),
				lock("dijkstra@ring-8", map[string]any{
					"protocol.name": "dijkstra", "topology.name": "ring", "topology.n": 8,
					"storm.corrupt": 8, "storm.warmTicks": 32, "storm.horizonTicks": 256,
					"storm.settleTicks": 16, "seed": 1_000_011,
				}),
				lock("lexclusion[l=2]@ring-8", map[string]any{
					"protocol.name": "lexclusion", "protocol.l": 2, "topology.name": "ring", "topology.n": 8,
					"storm.corrupt": 8, "storm.horizonTicks": 440, "seed": 1_000_011,
				}),
			}},
			{Name: "daemon", Points: []Point{
				{Label: "sd", Set: map[string]any{"daemon.name": "sync"}},
				{Label: "ud/distributed-p0.50", Set: map[string]any{"daemon.name": "distributed", "daemon.p": 0.5}},
			}},
		},
		Trials:  2,
		Metrics: []string{"resumed", "stallTicks", "legitTicks", "stormUnsafeTicks", "preGrantsPerTick", "postLatP95", "jainClients"},
		Reduce:  []string{"worst", "mean"},
	}
}

// stallCurve is the E13b reading as data: client-observed recovery of the
// SSME service on rings of growing size under sd, with the power-law fit
// of the stall — the service-level speculation curve.
func stallCurve() *Campaign {
	return &Campaign{
		Name: "stall-curve",
		Doc: "client-observed speculation curve: worst grant-stream stall after full corruption on growing rings under sd; " +
			"client time adds the privilege-rotation delay, so the stall grows ~linearly where protocol stabilization is Θ(diam)",
		Base: scenario.Scenario{
			Seed:     1,
			Protocol: scenario.ProtocolSpec{Name: "ssme"},
			Topology: scenario.TopologySpec{Name: "ring", N: 6},
			Workload: &scenario.WorkloadSpec{Kind: "closed", ThinkMax: 3},
			Storm:    &scenario.StormSpec{Bursts: 1}, // corrupt 0 = every register
		},
		Axes: []Axis{
			{Name: "n", Field: "topology.n", Values: []any{6, 10, 14}},
		},
		Trials:  2,
		Metrics: []string{"resumed", "stallTicks", "legitTicks"},
		Fit:     &FitSpec{Axis: "n", Metric: "stallTicks"},
	}
}

// daemonSpectrum is the E9 reading as data: SSME stabilization across the
// daemon spectrum on one ring, in all three time measures.
func daemonSpectrum() *Campaign {
	return &Campaign{
		Name: "daemon-spectrum",
		Doc: "SSME across the daemon spectrum: steps to termination separate (central schedules pay one move per step), " +
			"rounds stay daemon-invariant — the speculation gap lives in the step measure",
		Base: scenario.Scenario{
			Seed:     1,
			Protocol: scenario.ProtocolSpec{Name: "ssme"},
			Topology: scenario.TopologySpec{Name: "ring", N: 8},
			Init:     scenario.InitSpec{Mode: "random"},
			Stop:     scenario.StopSpec{Steps: 4096, UntilLegitimate: true},
		},
		Axes: []Axis{
			{Name: "n", Field: "topology.n", Values: []any{8, 12, 16}},
			{Name: "daemon", Points: []Point{
				{Label: "roundrobin", Set: map[string]any{"daemon.name": "roundrobin"}},
				{Label: "distributed-p0.50", Set: map[string]any{"daemon.name": "distributed", "daemon.p": 0.5}},
				{Label: "sync", Set: map[string]any{"daemon.name": "sync"}},
			}},
		},
		Trials:  3,
		Metrics: []string{"steps", "moves", "rounds", "legit"},
		Reduce:  []string{"worst"},
		Fit:     &FitSpec{Axis: "n", Metric: "steps"},
	}
}
