package core

import (
	"fmt"

	"specstab/internal/daemon"
	"specstab/internal/sim"
)

// Specification 1 (spec_ME) measurement helpers. A vertex executes its
// critical section when it is privileged in γ_i and activated during the
// action (γ_i, γ_{i+1}); safety demands at most one privileged vertex per
// configuration and liveness that every vertex executes its critical
// section infinitely often.

// MeasureSync runs SSME's (unique) synchronous execution from initial and
// reports the observed stabilization time in steps. The horizon runs far
// past the paper's 2n + diam unison bound plus a full service window, so a
// late safety violation cannot hide beyond it (after Γ₁ membership, closure
// makes violations impossible — ClosureBroken asserts that empirically).
func (p *Protocol) MeasureSync(initial sim.Config[int]) (sim.RunReport, error) {
	e, err := sim.NewEngine[int](p, daemon.NewSynchronous[int](), initial, 1)
	if err != nil {
		return sim.RunReport{}, err
	}
	horizon := p.ServiceWindow()
	return sim.MeasureConvergence(e, horizon, p.SafeME, p.Legitimate)
}

// MeasureUnder runs one execution under an arbitrary daemon for the given
// horizon in steps and scores it against spec_ME safety and Γ₁.
func (p *Protocol) MeasureUnder(d sim.Daemon[int], initial sim.Config[int], seed int64, horizon int) (sim.RunReport, error) {
	e, err := sim.NewEngine[int](p, d, initial, seed)
	if err != nil {
		return sim.RunReport{}, err
	}
	return sim.MeasureConvergence(e, horizon, p.SafeME, p.Legitimate)
}

// ServiceReport summarizes critical-section service over a measured window
// (the liveness half of spec_ME).
type ServiceReport struct {
	// WindowSteps is the number of steps observed.
	WindowSteps int
	// CSCount[v] is how many times v executed its critical section.
	CSCount []int
	// AllServed is true when every vertex executed its critical section at
	// least once during the window.
	AllServed bool
	// MaxGap is the largest observed inter-service gap (in steps) across
	// vertices, counting from the window start.
	MaxGap int
	// ConcurrentCS counts steps in which two privileged vertices were
	// activated together — actual simultaneous critical sections, the
	// event safety forbids after stabilization.
	ConcurrentCS int
}

// MeasureService drives e for window steps and records critical-section
// executions: v executes its CS at step i+1 exactly when v was privileged
// in γ_i and the daemon activated it. Call it on an engine whose current
// configuration is already legitimate to measure steady-state service, or
// from an arbitrary configuration to watch service begin after
// stabilization.
func (p *Protocol) MeasureService(e *sim.Engine[int], window int) (ServiceReport, error) {
	n := p.g.N()
	rep := ServiceReport{
		WindowSteps: window,
		CSCount:     make([]int, n),
	}
	lastServed := make([]int, n)
	wasPrivileged := make([]bool, n)

	// One pipeline registration for the whole window (the loop variables
	// are captured by reference); the hook composes with any observers the
	// caller has already attached to e.
	var step, servedThisStep int
	id := e.AddHook(func(info sim.StepInfo) {
		for _, v := range info.Activated {
			if wasPrivileged[v] {
				rep.CSCount[v]++
				servedThisStep++
				if gap := step - lastServed[v]; gap > rep.MaxGap {
					rep.MaxGap = gap
				}
				lastServed[v] = step
			}
		}
	})
	defer e.RemoveHook(id)
	for step = 1; step <= window; step++ {
		cur := e.Current()
		for v := 0; v < n; v++ {
			wasPrivileged[v] = p.Privileged(cur, v)
		}
		servedThisStep = 0
		progressed, err := e.Step()
		if err != nil {
			return rep, err
		}
		if !progressed {
			return rep, fmt.Errorf("core: SSME reached a terminal configuration (step %d) — impossible for a live protocol", step)
		}
		if servedThisStep > 1 {
			rep.ConcurrentCS++
		}
	}
	rep.AllServed = true
	for v := 0; v < n; v++ {
		if rep.CSCount[v] == 0 {
			rep.AllServed = false
		}
		if gap := window - lastServed[v]; gap > rep.MaxGap {
			rep.MaxGap = gap
		}
	}
	return rep, nil
}
