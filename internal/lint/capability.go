package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// Capability machine-checks the protocol capability contract of DESIGN.md
// §6 and the registry/test-matrix coupling of §8:
//
//  1. A type providing the Flat execution capability (the packed batch
//     kernels, or a Flat() provider hook) must also declare Local (its
//     guard read-sets — the shard-parallel step leans on incremental
//     enabled-set maintenance) and RuleBounded (a static rule-space bound
//     — wrappers pre-intern derived rule spaces with it, which is what
//     keeps rule numbering independent of encounter order).
//
//  2. Every constructor registered in the scenario protocol registry must
//     appear in the differential/conformance test matrix: a protocol that
//     scenarios can name but the backend-equivalence tests never drive is
//     an unchecked determinism claim.
var Capability = &Analyzer{
	Name:      "capability",
	Directive: "capability",
	Doc: "a protocol providing Flat must also provide Local and RuleBounded, and every protocol " +
		"in the scenario registry must be exercised by the differential/conformance test matrix",
	Run: runCapability,
}

func runCapability(pass *Pass) error {
	checkFlatCapabilities(pass)
	if pass.Pkg.Path == pass.Policy.RegistryPkg {
		checkRegistryMatrix(pass)
	}
	return nil
}

// checkFlatCapabilities audits every named type declared in the package.
func checkFlatCapabilities(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ms := methodNames(named)
		// The contract binds protocol types (the values FlatOf/LocalOf
		// inspect), not internal codec helpers a Flat() provider returns:
		// only types carrying the Protocol surface are audited.
		if !ms["EnabledRule"] || !ms["Apply"] {
			continue
		}
		providesFlat := (ms["FlatWords"] && ms["EnabledRuleFlat"] && ms["ApplyFlat"]) || ms["Flat"]
		if !providesFlat {
			continue
		}
		if !ms["Neighbors"] && !ms["Local"] {
			pass.Reportf(tn.Pos(), "%s provides the Flat capability but not Local: declare the guard read-sets (Neighbors or a Local() provider) so incremental enabled-set maintenance stays sound", name)
		}
		if !ms["MaxRule"] {
			pass.Reportf(tn.Pos(), "%s provides the Flat capability but not RuleBounded: declare MaxRule() so wrappers can pre-intern the rule space deterministically", name)
		}
	}
}

// methodNames returns the method-set names of *T (value and pointer
// receivers both included).
func methodNames(named *types.Named) map[string]bool {
	out := map[string]bool{}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		out[ms.At(i).Obj().Name()] = true
	}
	return out
}

// checkRegistryMatrix cross-references the protocol registry against the
// package's differential/conformance test files.
func checkRegistryMatrix(pass *Pass) {
	names := registryProtocolNames(pass)
	if len(names) == 0 {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "no protocolRegistry literal found in %s: the capability analyzer cannot check the test matrix", pass.Pkg.Path)
		return
	}
	matrix := matrixStringLiterals(pass)
	if len(matrix) == 0 {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "no *differential_test.go / *conformance*_test.go files found in %s: the registered protocols have no backend-equivalence matrix", pass.Pkg.Path)
		return
	}
	for _, n := range names {
		if !matrix[n.name] {
			pass.Reportf(n.pos, "protocol %q is registered but absent from the differential/conformance test matrix: add it to the backend-equivalence tests (its determinism claim is otherwise unchecked)", n.name)
		}
	}
}

// registryName is one name: "..." entry of the protocol registry.
type registryName struct {
	name string
	pos  token.Pos
}

// registryProtocolNames extracts the name: "..." fields of the
// protocolRegistry composite literal.
func registryProtocolNames(pass *Pass) []registryName {
	var out []registryName
	pass.inspect(func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name != "protocolRegistry" {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			entry, ok := el.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, f := range entry.Elts {
				kv, ok := f.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "name" {
					continue
				}
				if bl, ok := kv.Value.(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(bl.Value); err == nil {
						out = append(out, registryName{name: s, pos: kv.Pos()})
					}
				}
			}
		}
		return true
	})
	return out
}

// matrixStringLiterals collects every string literal appearing in the
// package's differential/conformance test files.
func matrixStringLiterals(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Pkg.TestFiles {
		base := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
		if !strings.Contains(base, "differential") && !strings.Contains(base, "conformance") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.STRING {
				if s, err := strconv.Unquote(bl.Value); err == nil {
					out[s] = true
				}
			}
			return true
		})
	}
	return out
}
