package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"specstab/internal/bfstree"
	"specstab/internal/compose"
	"specstab/internal/daemon"
	"specstab/internal/dijkstra"
	"specstab/internal/graph"
	"specstab/internal/scenario"
	"specstab/internal/sim"
	"specstab/internal/stats"
	"specstab/internal/unison"
)

// E12Scaling measures the engine-locality tentpole: with a Local protocol
// the engine maintains the enabled set incrementally, spending
// O(Δ·avg-degree) guard evaluations per step instead of the O(N) full
// rescan — the locality Dolev & Herman exploit in unsupportive
// environments and that Hoepman's K=N ring analysis relies on (PAPERS.md).
//
// For every (topology, size, daemon) cell the same seeded execution is
// driven twice, once incrementally and once with rescans, the two final
// configurations are checked equal (the differential guarantee, at scale),
// and the table reports guard-evaluations-per-step for both along with the
// reduction factor and wall-clock. On sparse schedules (central daemon,
// ring) the reduction is ~N/(Δ·deg): three orders of magnitude at N = 100k.
//
// The grids run on the single-worker pool (seqPool) on purpose — parallel
// cells would contend for cores and skew the wall-clock columns.
func E12Scaling(cfg RunConfig) ([]*stats.Table, error) {
	steps := cfg.pick(300, 2000)
	ringSizes := []int{1024, 4096}
	treeSizes := []int{1024}
	if !cfg.Quick {
		ringSizes = []int{1024, 4096, 16384, 65536, 100000}
		// Prüfer decoding of random trees is quadratic, so the random
		// topologies stop at 16384 while the ring covers the full sweep.
		treeSizes = []int{1024, 4096, 16384}
	}

	table := stats.NewTable(
		"E12 — engine locality scaling: guard evaluations per step, incremental vs full rescan",
		"graph", "n", "daemon", "steps", "evals/step incr", "evals/step full", "reduction ×", "incr ms", "full ms", "consistent",
	)

	type cell struct {
		gname string
		n     int
		build func() (proto[int], error)
	}
	cells := make([]cell, 0, len(ringSizes)+2*len(treeSizes))
	for _, n := range ringSizes {
		n := n
		cells = append(cells, cell{"ring", n, func() (proto[int], error) {
			p, err := dijkstra.New(n, n)
			return proto[int]{p, n}, err
		}})
	}
	for _, n := range treeSizes {
		n := n
		cells = append(cells, cell{"randtree", n, func() (proto[int], error) {
			g := graph.RandomTree(n, cfg.rng(int64(29*n)))
			p, err := bfstree.New(g, 0)
			return proto[int]{p, n}, err
		}})
		cells = append(cells, cell{"randconn", n, func() (proto[int], error) {
			rng := cfg.rng(int64(31 * n))
			g := graph.RandomConnected(n, n/2, rng)
			p, err := bfstree.New(g, 0)
			return proto[int]{p, n}, err
		}})
	}

	var rows []rowsCell
	for _, c := range cells {
		pr, err := c.build()
		if err != nil {
			return nil, err
		}
		for _, dm := range []struct {
			name string
			mk   func() sim.Daemon[int]
		}{
			{"cd/random", func() sim.Daemon[int] { return daemon.NewRandomCentral[int]() }},
			{"ud/distributed-p0.01", func() sim.Daemon[int] { return daemon.NewDistributed[int](0.01) }},
		} {
			c, dm := c, dm
			rows = append(rows, rowsCell{run: func() ([][]any, error) {
				row, err := measureScalingCell(cfg, pr.p, dm.mk, c.n, steps)
				if err != nil {
					return nil, fmt.Errorf("e12 %s-%d under %s: %w", c.gname, c.n, dm.name, err)
				}
				return [][]any{{fmt.Sprintf("%s-%d", c.gname, c.n), c.n, dm.name, row.steps,
					fmt.Sprintf("%.1f", row.evalsIncr), fmt.Sprintf("%.1f", row.evalsFull),
					fmt.Sprintf("%.0f", row.evalsFull/row.evalsIncr),
					row.incrMS, row.fullMS, ok(row.consistent)}}, nil
			}})
		}
	}
	if err := runRows(seqPool(), table, rows); err != nil {
		return nil, err
	}
	table.AddNote("executions are identical by construction (differential tests); the acceptance bar is ≥5× fewer guard evals on the 4096-ring under cd — measured ~10³×")
	table.AddNote("wall-clock columns vary between runs; every other column is deterministic for a fixed seed")

	backends, err := e12BackendTable(cfg)
	if err != nil {
		return nil, err
	}
	compositions, err := e12CompositionTable(cfg)
	if err != nil {
		return nil, err
	}
	parallel, err := e12ParallelTable(cfg)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{table, backends, compositions, parallel}, nil
}

// workerSweep is the ISSUE 7 worker grid {1, 2, 4, GOMAXPROCS},
// deduplicated and ascending (on a 4-core host GOMAXPROCS collapses into
// the 4 column; on one core the sweep still runs as a determinism check).
func workerSweep() []int {
	sweep := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range sweep {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// e12ParallelTable measures the multi-core tentpole: the same seeded
// synchronous execution on the flat backend driven once per worker count,
// each through its own persistent shard pool (reused across every step of
// the run — the pool is started once and its barrier cycled per sharded
// phase, never respawned). steps/sec and moves/sec are the throughput
// payload; the fingerprint column asserts the tentpole invariant that
// every worker count replays the Workers=1 execution bit for bit.
func e12ParallelTable(cfg RunConfig) (*stats.Table, error) {
	steps := cfg.pick(30, 60)
	sizes := []int{4096}
	if !cfg.Quick {
		sizes = []int{65536, 262144, 1048576}
	}
	workers := workerSweep()

	table := stats.NewTable(
		"E12d — shard-parallel flat backend under sd: steps/sec and moves/sec vs worker count",
		"graph", "n", "workers", "steps", "ns/step", "steps/s", "moves/s", "speedup ×", "consistent",
	)
	var rows []rowsCell
	for _, n := range sizes {
		n := n
		rows = append(rows, rowsCell{run: func() ([][]any, error) {
			return e12ParallelRows(cfg, n, steps, workers)
		}})
	}
	if err := runRows(seqPool(), table, rows); err != nil {
		return nil, err
	}
	table.AddNote("host: %d core(s), GOMAXPROCS=%d — speedup is scaling efficiency relative to workers=1; on a single-core host the parallel rows measure pool overhead and the table is a determinism check",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	table.AddNote("consistent: every worker count reproduces the workers=1 configuration fingerprint, steps and moves exactly (sim.FingerprintConfig)")
	return table, nil
}

// e12ParallelRows drives one unison ring (full-width sd firing front, the
// fused fast path) once per worker count from the same seeded start.
func e12ParallelRows(cfg RunConfig, n, steps int, workers []int) ([][]any, error) {
	g := graph.Ring(n)
	p, err := unison.New(g, unison.SafeParams(g))
	if err != nil {
		return nil, err
	}
	initial := sim.RandomConfig[int](p, cfg.rng(int64(53*n)))
	seed := cfg.seed() + int64(n)

	var out [][]any
	var baseNS int64
	var baseFP uint64
	var baseMoves int
	for i, w := range workers {
		pool := sim.NewPool(w)
		e, err := scenario.NewEngine[int](scenario.EngineSpec{Backend: "flat", Workers: w, Pool: pool},
			p, daemon.NewSynchronous[int](), initial, seed)
		if err != nil {
			pool.Close()
			return nil, err
		}
		done, ns, _, err := timedRun(e, steps)
		pool.Close()
		if err != nil {
			return nil, err
		}
		fp := sim.FingerprintConfig(e.Current())
		moves := e.Moves()
		if i == 0 {
			baseNS, baseFP, baseMoves = ns, fp, moves
		}
		div := ns
		if div == 0 {
			div = 1
		}
		stepsPerSec := 1e9 / float64(div)
		movesPerSec := stepsPerSec * float64(moves) / float64(max(done, 1))
		out = append(out, []any{fmt.Sprintf("ring-%d", n), n, w, done, ns,
			fmt.Sprintf("%.0f", stepsPerSec), fmt.Sprintf("%.3g", movesPerSec),
			fmt.Sprintf("%.2f", ratio(baseNS, ns)), ok(fp == baseFP && moves == baseMoves)})
	}
	return out, nil
}

// e12CompositionTable measures the zero-copy composition win: the generic
// Product must materialize both component projections of the whole
// configuration for every guard evaluation (O(N) per guard, O(N²) per
// synchronous step), while the flat product hands each component the same
// packed array at a shifted base offset (O(deg) per guard). This is where
// the flat backend's stride/base calling convention pays off by orders of
// magnitude, which is why the generic column gets very few steps.
func e12CompositionTable(cfg RunConfig) (*stats.Table, error) {
	table := stats.NewTable(
		"E12c — zero-copy flat composition (unison × bfstree under sd): ns/step",
		"n", "steps gen", "steps flat", "ns/step gen", "ns/step flat", "speedup ×", "consistent",
	)
	sizes := []int{512}
	genSteps, flatSteps := 10, 10
	if !cfg.Quick {
		sizes = []int{4096, 8192, 16384}
		genSteps, flatSteps = 5, 100
	}
	var rows []rowsCell
	for _, n := range sizes {
		n := n
		rows = append(rows, rowsCell{run: func() ([][]any, error) {
			return e12CompositionRow(cfg, n, genSteps, flatSteps)
		}})
	}
	if err := runRows(seqPool(), table, rows); err != nil {
		return nil, err
	}
	table.AddNote("generic compositions copy both component projections per guard (O(N²)/sync step); the flat product is projection-free via stride/base offsets")
	return table, nil
}

// e12CompositionRow measures one composition size.
func e12CompositionRow(cfg RunConfig, n, genSteps, flatSteps int) ([][]any, error) {
	g := graph.Ring(n)
	uni, err := unison.New(g, unison.SafeParams(g))
	if err != nil {
		return nil, err
	}
	prod, err := compose.New[int, int](uni, bfstree.MustNew(g, 0))
	if err != nil {
		return nil, err
	}
	rng := cfg.rng(int64(47 * n))
	initial := sim.RandomConfig[compose.Pair[int, int]](prod, rng)
	seed := cfg.seed() + int64(n)

	gen, err := scenario.NewEngine[compose.Pair[int, int]](
		scenario.EngineSpec{Backend: "generic", Workers: 1}, prod,
		daemon.NewSynchronous[compose.Pair[int, int]](), initial, seed)
	if err != nil {
		return nil, err
	}
	flat, err := scenario.NewEngine[compose.Pair[int, int]](
		scenario.EngineSpec{Backend: "flat", Workers: 1}, prod,
		daemon.NewSynchronous[compose.Pair[int, int]](), initial, seed)
	if err != nil {
		return nil, err
	}
	dg, genNS, _, err := timedRun(gen, genSteps)
	if err != nil {
		return nil, err
	}
	df, flatNS, _, err := timedRun(flat, flatSteps)
	if err != nil {
		return nil, err
	}
	// The executions are identical step for step; cross-check on the
	// shared prefix by replaying the flat engine's first dg steps.
	check, err := scenario.NewEngine[compose.Pair[int, int]](
		scenario.EngineSpec{Backend: "flat", Workers: 1}, prod,
		daemon.NewSynchronous[compose.Pair[int, int]](), initial, seed)
	if err != nil {
		return nil, err
	}
	if _, err := check.Run(dg, nil); err != nil {
		return nil, err
	}
	return [][]any{{n, dg, df, genNS, flatNS,
		fmt.Sprintf("%.0f", ratio(genNS, flatNS)), ok(check.Current().Equal(gen.Current()))}}, nil
}

// e12BackendTable is the flat-backend extension of E12: the same seeded
// synchronous execution driven once on the generic backend and once on the
// flat backend (both sequential, plus the flat backend with GOMAXPROCS
// shard workers), reporting ns/step, allocations/step and the speedups.
// Ring sizes sweep up to 10⁶ vertices; trees use the deterministic binary
// tree at the same sizes (Prüfer decoding of random trees is quadratic, so
// the random connected topology stops at 16384).
func e12BackendTable(cfg RunConfig) (*stats.Table, error) {
	steps := cfg.pick(60, 150)
	table := stats.NewTable(
		"E12b — flat execution backend vs generic under sd: ns/step and allocs/step",
		"graph", "n", "steps", "ns/step gen", "ns/step flat", "flat ×", "ns/step flat-par", "par ×", "allocs/step gen", "allocs/step flat", "consistent",
	)

	type cell struct {
		gname string
		n     int
		build func() (proto[int], error)
	}
	ringSizes := []int{1024, 4096}
	treeSizes := []int{1024}
	randSizes := []int{1024}
	if !cfg.Quick {
		ringSizes = []int{65536, 262144, 1048576}
		treeSizes = []int{65536, 262144, 1048576}
		randSizes = []int{16384}
	}
	var cells []cell
	for _, n := range ringSizes {
		n := n
		cells = append(cells, cell{"ring", n, func() (proto[int], error) {
			p, err := dijkstra.New(n, n)
			return proto[int]{p, n}, err
		}})
	}
	for _, n := range treeSizes {
		n := n
		cells = append(cells, cell{"bintree", n, func() (proto[int], error) {
			p, err := bfstree.New(graph.BinaryTree(n), 0)
			return proto[int]{p, n}, err
		}})
	}
	for _, n := range randSizes {
		n := n
		cells = append(cells, cell{"randconn", n, func() (proto[int], error) {
			g := graph.RandomConnected(n, n/2, cfg.rng(int64(41*n)))
			p, err := bfstree.New(g, 0)
			return proto[int]{p, n}, err
		}})
	}

	var rows []rowsCell
	for _, c := range cells {
		pr, err := c.build()
		if err != nil {
			return nil, err
		}
		c := c
		rows = append(rows, rowsCell{run: func() ([][]any, error) {
			row, err := measureBackendCell(cfg, pr.p, c.n, steps)
			if err != nil {
				return nil, fmt.Errorf("e12b %s-%d: %w", c.gname, c.n, err)
			}
			return [][]any{{fmt.Sprintf("%s-%d", c.gname, c.n), c.n, row.steps,
				row.genNS, row.flatNS, fmt.Sprintf("%.1f", ratio(row.genNS, row.flatNS)),
				row.flatParNS, fmt.Sprintf("%.1f", ratio(row.genNS, row.flatParNS)),
				fmt.Sprintf("%.1f", row.genAllocs), fmt.Sprintf("%.1f", row.flatAllocs), ok(row.consistent)}}, nil
		}})
	}
	if err := runRows(seqPool(), table, rows); err != nil {
		return nil, err
	}
	table.AddNote("both backends replay the identical execution (differential tests); sequential engines isolate the representation win, flat-par adds shard parallelism")
	table.AddNote("acceptance bar: ≥3× ns/step for flat over generic on the 65536-ring under sd; timing columns vary between runs")
	return table, nil
}

// ratio guards against division by zero in timing columns.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

type backendRow struct {
	steps                 int
	genNS, flatNS         int64
	flatParNS             int64
	genAllocs, flatAllocs float64
	consistent            bool
}

// timedRun drives one engine for up to steps transitions, returning
// executed steps, ns/step and mallocs/step.
func timedRun[S comparable](e *sim.Engine[S], steps int) (int, int64, float64, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	done, err := e.Run(steps, nil)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return done, 0, 0, err
	}
	div := done
	if div == 0 {
		div = 1
	}
	return done, elapsed.Nanoseconds() / int64(div), float64(m1.Mallocs-m0.Mallocs) / float64(div), nil
}

// measureBackendCell drives the same seeded synchronous execution on the
// generic backend, the sequential flat backend and the shard-parallel flat
// backend, and cross-checks the final configurations.
func measureBackendCell[S comparable](cfg RunConfig, p sim.Protocol[S], salt, steps int) (backendRow, error) {
	if sim.FlatOf(p) == nil {
		return backendRow{}, fmt.Errorf("protocol %s lacks sim.Flat", p.Name())
	}
	rng := cfg.rng(int64(43 * salt))
	initial := sim.RandomConfig(p, rng)
	seed := cfg.seed() + int64(salt)
	mk := func() sim.Daemon[S] { return daemon.NewSynchronous[S]() }

	gen, err := scenario.NewEngine(scenario.EngineSpec{Backend: "generic", Workers: 1}, p, mk(), initial, seed)
	if err != nil {
		return backendRow{}, err
	}
	flat, err := scenario.NewEngine(scenario.EngineSpec{Backend: "flat", Workers: 1}, p, mk(), initial, seed)
	if err != nil {
		return backendRow{}, err
	}
	flatPar, err := scenario.NewEngine(scenario.EngineSpec{Backend: "flat"}, p, mk(), initial, seed)
	if err != nil {
		return backendRow{}, err
	}

	dg, genNS, genAllocs, err := timedRun(gen, steps)
	if err != nil {
		return backendRow{}, err
	}
	df, flatNS, flatAllocs, err := timedRun(flat, steps)
	if err != nil {
		return backendRow{}, err
	}
	dp, flatParNS, _, err := timedRun(flatPar, steps)
	if err != nil {
		return backendRow{}, err
	}

	return backendRow{
		steps:      dg,
		genNS:      genNS,
		flatNS:     flatNS,
		flatParNS:  flatParNS,
		genAllocs:  genAllocs,
		flatAllocs: flatAllocs,
		consistent: dg == df && df == dp &&
			gen.Current().Equal(flat.Current()) && gen.Current().Equal(flatPar.Current()) &&
			gen.Moves() == flat.Moves() && gen.Moves() == flatPar.Moves(),
	}, nil
}

// proto pairs a protocol with its size (a generic-free holder for the cell
// builders above).
type proto[S comparable] struct {
	p sim.Protocol[S]
	n int
}

type scalingRow struct {
	steps                int
	evalsIncr, evalsFull float64
	incrMS, fullMS       int64
	consistent           bool
}

// measureScalingCell drives the same seeded execution incrementally and
// with full rescans and reports per-step guard-evaluation costs.
func measureScalingCell[S comparable](cfg RunConfig, p sim.Protocol[S], mk func() sim.Daemon[S], salt, steps int) (scalingRow, error) {
	rng := cfg.rng(int64(37 * salt))
	initial := sim.RandomConfig(p, rng)
	seed := cfg.seed() + int64(salt)

	inc, err := newEngine(cfg, p, mk(), initial, seed)
	if err != nil {
		return scalingRow{}, err
	}
	if !inc.Incremental() {
		return scalingRow{}, fmt.Errorf("protocol %s lacks sim.Local", p.Name())
	}
	full, err := newEngine(cfg, p, mk(), initial, seed)
	if err != nil {
		return scalingRow{}, err
	}
	full.DisableIncremental()

	start := time.Now()
	di, err := inc.Run(steps, nil)
	if err != nil {
		return scalingRow{}, err
	}
	incrMS := time.Since(start).Milliseconds()

	start = time.Now()
	df, err := full.Run(steps, nil)
	if err != nil {
		return scalingRow{}, err
	}
	fullMS := time.Since(start).Milliseconds()

	executed := di
	if executed == 0 {
		executed = 1
	}
	return scalingRow{
		steps:      di,
		evalsIncr:  float64(inc.GuardEvals()) / float64(executed),
		evalsFull:  float64(full.GuardEvals()) / float64(executed),
		incrMS:     incrMS,
		fullMS:     fullMS,
		consistent: di == df && inc.Current().Equal(full.Current()) && inc.Moves() == full.Moves(),
	}, nil
}
