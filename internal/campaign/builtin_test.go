package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBuiltinsExpand: every built-in campaign has a valid grid.
func TestBuiltinsExpand(t *testing.T) {
	t.Parallel()
	for _, c := range Builtins() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			cells, err := c.Cells()
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) == 0 {
				t.Fatal("empty grid")
			}
			if _, err := ByName(c.Name); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := ByName("no-such-campaign"); err == nil {
		t.Fatal("unknown built-in name was accepted")
	}
}

// TestExampleFilesMatchBuiltins: the checked-in examples/campaigns files
// are dumps of the built-ins — loading one must reproduce the built-in's
// grid cell for cell (fingerprints equal), so the files never drift from
// the code.
func TestExampleFilesMatchBuiltins(t *testing.T) {
	t.Parallel()
	dir := filepath.Join("..", "..", "examples", "campaigns")
	for _, c := range Builtins() {
		c := c
		path := filepath.Join(dir, c.Name+".json")
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("missing example file for built-in: %v", err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.Cells()
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Cells()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("grid size %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Fingerprint != want[i].Fingerprint {
					t.Fatalf("cell %d (%v) fingerprint drifted from the built-in", i, want[i].Labels)
				}
			}
		})
	}
}
