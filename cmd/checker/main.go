// Command checker exhaustively model-checks a protocol on a small
// instance: exact worst-case stabilization over every unfair-daemon
// schedule, closure of the legitimacy set, deadlock freedom, safety inside
// legitimacy — or a concrete divergence witness when the instance is
// mis-parameterized (e.g. Dijkstra's ring with K < n).
//
// Examples:
//
//	checker -system ssme -topology ring -n 3
//	checker -system unison -topology path -n 4 -minimal
//	checker -system dijkstra -n 4 -k 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"specstab/internal/check"
	"specstab/internal/cli"
	"specstab/internal/core"
	"specstab/internal/dijkstra"
	"specstab/internal/graph"
	"specstab/internal/scenario"
	"specstab/internal/unison"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "checker:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: flags are parsed from args and the
// report written to out (the smoke tests drive it directly).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("checker", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		system   = fs.String("system", "ssme", "system to check: ssme, unison, dijkstra")
		topology = fs.String("topology", "ring", "topology: "+cli.Topologies)
		n        = fs.Int("n", 3, "number of vertices (state spaces grow as |domain|^n)")
		k        = fs.Int("k", 0, "dijkstra: counter states K (default n; K<n demonstrates divergence)")
		minimal  = fs.Bool("minimal", false, "unison: use minimal clock parameters instead of α=n")
		central  = fs.Bool("central", false, "restrict the adversary to the central daemon")
		maxCfg   = fs.Int("max-configs", 2_000_000, "state-space safety valve")
		common   = cli.AddCommon(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The checker enumerates configurations rather than running engines,
	// so -backend/-workers have no effect here — but the shared flag set
	// is still validated, with the same error text as every other driver.
	if _, err := common.Resolve(); err != nil {
		return err
	}
	if err := common.RejectTelemetry("checker"); err != nil {
		return err
	}

	switch *system {
	case "ssme":
		g, err := cli.ParseTopology(*topology, *n, common.Seed)
		if err != nil {
			return err
		}
		p, err := buildProto[*core.Protocol](scenario.ProtocolSpec{Name: "ssme"}, g, *topology)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "checking SSME on %s — clock %s, domain %d^%d\n", g, p.Clock(), p.Clock().Size(), g.N())
		rep, err := check.Exhaustive[int](p, check.Options[int]{
			Domain:       func(int) []int { return p.Clock().Values() },
			Legit:        p.Legitimate,
			Safe:         p.SafeME,
			Central:      *central,
			CheckClosure: true,
			MaxConfigs:   *maxCfg,
		})
		if err != nil {
			return err
		}
		printReport(out, "Γ₁", rep.Configs, rep.LegitCount, rep.DeadlockCount, rep.ClosureViolations,
			rep.UnsafeLegit, rep.WorstSteps, rep.WorstMoves, rep.NonConverging, fmt.Sprint(rep.CycleWitness))
		fmt.Fprintf(out, "Theorem 3 bound: %d moves (exact worst: %d)\n", p.UnfairBoundMoves(), rep.WorstMoves)

		sync, err := check.SyncWorst[int](p, check.SyncOptions[int]{
			Domain:     func(int) []int { return p.Clock().Values() },
			Safe:       p.SafeME,
			Legit:      p.Legitimate,
			Horizon:    p.ServiceWindow(),
			MaxConfigs: *maxCfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "exact synchronous worst case: %d steps (Theorem 2 bound ⌈diam/2⌉ = %d) from %v\n",
			sync.WorstSteps, core.SyncBound(g), sync.WorstConfig)
		return nil

	case "unison":
		g, err := cli.ParseTopology(*topology, *n, common.Seed)
		if err != nil {
			return err
		}
		u, err := buildProto[*unison.Protocol](scenario.ProtocolSpec{Name: "unison", Minimal: *minimal}, g, *topology)
		if err != nil {
			return err
		}
		params := u.Clock()
		fmt.Fprintf(out, "checking unison on %s — clock %s, domain %d^%d\n", g, params, params.Size(), g.N())
		rep, err := check.Exhaustive[int](u, check.Options[int]{
			Domain:       func(int) []int { return u.Clock().Values() },
			Legit:        u.Legitimate,
			Central:      *central,
			CheckClosure: true,
			MaxConfigs:   *maxCfg,
		})
		if err != nil {
			return err
		}
		printReport(out, "Γ₁", rep.Configs, rep.LegitCount, rep.DeadlockCount, rep.ClosureViolations,
			rep.UnsafeLegit, rep.WorstSteps, rep.WorstMoves, rep.NonConverging, fmt.Sprint(rep.CycleWitness))
		return nil

	case "dijkstra":
		kk := *k
		if kk == 0 {
			kk = *n
		}
		p, err := buildProto[*dijkstra.Protocol](
			scenario.ProtocolSpec{Name: "dijkstra", K: kk, Unchecked: true}, graph.Ring(*n), "ring")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "checking %s — domain %d^%d\n", p.Name(), kk, *n)
		domain := make([]int, kk)
		for i := range domain {
			domain[i] = i
		}
		rep, err := check.Exhaustive[int](p, check.Options[int]{
			Domain:       func(int) []int { return domain },
			Legit:        p.Legitimate,
			Safe:         p.SafeME,
			Central:      *central,
			CheckClosure: true,
			MaxConfigs:   *maxCfg,
		})
		if err != nil {
			return err
		}
		printReport(out, "single token", rep.Configs, rep.LegitCount, rep.DeadlockCount, rep.ClosureViolations,
			rep.UnsafeLegit, rep.WorstSteps, rep.WorstMoves, rep.NonConverging, fmt.Sprint(rep.CycleWitness))
		if kk < *n && !rep.NonConverging {
			fmt.Fprintln(out, "note: expected divergence for K < n was NOT found — check the instance")
		}
		return nil

	default:
		return fmt.Errorf("unknown -system %q (ssme, unison, dijkstra)", *system)
	}
}

func printReport(out io.Writer, legitName string, configs, legit, deadlocks, closureViol, unsafeLegit, worstSteps, worstMoves int, diverges bool, witness string) {
	fmt.Fprintf(out, "configurations  : %d (%d in %s)\n", configs, legit, legitName)
	fmt.Fprintf(out, "deadlocks       : %d\n", deadlocks)
	fmt.Fprintf(out, "closure breaks  : %d\n", closureViol)
	fmt.Fprintf(out, "unsafe legit    : %d\n", unsafeLegit)
	if diverges {
		fmt.Fprintf(out, "DIVERGES        : cycle outside the legitimacy set, witness %s\n", witness)
		return
	}
	fmt.Fprintf(out, "exact worst case: %d steps / %d moves to legitimacy (over ALL schedules)\n", worstSteps, worstMoves)
}

// buildProto constructs a protocol through the scenario registry and
// asserts its concrete type — the checker needs the protocol-specific
// predicates and domains the generic interface does not carry.
func buildProto[T any](spec scenario.ProtocolSpec, g *graph.Graph, topo string) (T, error) {
	var zero T
	pAny, err := scenario.BuildProtocol(spec, g, topo)
	if err != nil {
		return zero, err
	}
	return pAny.(T), nil
}
