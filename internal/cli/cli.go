// Package cli holds the flag-level helpers shared by the command-line
// tools under cmd/: the common -backend/-workers/-seed flag set every
// driver accepts with identical parsing and error text, and thin parsers
// delegating to the named registries of internal/scenario (topologies,
// daemons, backends), so the CLI vocabulary and the scenario vocabulary
// are one and the same.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"specstab/internal/graph"
	"specstab/internal/scenario"
	"specstab/internal/sim"
	"specstab/internal/telemetry"
)

// Topologies lists the -topology values understood by ParseTopology.
var Topologies = strings.Join(scenario.TopologyNames(), ", ")

// ParseTopology builds the graph named by name with main size n (rows
// default to a near-square split for grid/torus; hypercube uses the
// dimension that fits n; randconn adds n/2 extra edges). It is the flag
// front of scenario.BuildTopology.
func ParseTopology(name string, n int, seed int64) (*graph.Graph, error) {
	return scenario.BuildTopology(scenario.TopologySpec{Name: name, N: n}, seed)
}

// Backends lists the -backend values understood by ParseBackend.
var Backends = strings.Join(scenario.BackendNames(), ", ")

// ParseBackend resolves a -backend flag value to engine Options.
// Executions are bitwise identical for every choice (DESIGN.md §6).
func ParseBackend(name string) (sim.Options, error) {
	return scenario.EngineSpec{Backend: name}.Options()
}

// Daemons lists the -daemon values understood by ParseDaemon.
var Daemons = strings.Join(scenario.DaemonNames(), ", ")

// ParseDaemon builds the daemon named by name for an n-vertex system;
// p is the activation probability of the distributed daemon.
func ParseDaemon[S comparable](name string, n int, p float64) (sim.Daemon[S], error) {
	return scenario.NewDaemon[S](scenario.DaemonSpec{Name: name, P: p}, n)
}

// Common is the flag set every driver shares. AddCommon registers the
// flags; Resolve validates them after parsing. Workers means "engine
// shard workers" for drivers running one engine and "trial pool workers"
// for the experiment harness — in both cases results are identical for
// every value, which is why one flag serves both.
type Common struct {
	// Backend is the raw -backend value (validated by Resolve).
	Backend string
	// Workers is the -workers value (0 = GOMAXPROCS).
	Workers int
	// Seed is the -seed value driving all randomness.
	Seed int64
	// Telemetry is the -telemetry listen address ("" = disabled).
	// Executions are bitwise identical with telemetry on or off
	// (collection is a pure read; DESIGN.md §12).
	Telemetry string
}

// AddCommon registers the shared -backend, -workers, -seed and -telemetry
// flags on fs with the uniform help and error text of the repository's
// drivers.
func AddCommon(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.StringVar(&c.Backend, "backend", "auto", "engine execution backend: "+Backends+"; executions are identical for every value")
	fs.IntVar(&c.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS); results are identical for every value")
	fs.Int64Var(&c.Seed, "seed", 1, "random seed")
	fs.StringVar(&c.Telemetry, "telemetry", "", "serve live telemetry — Prometheus /metrics and /debug/pprof/ — on this address (e.g. 127.0.0.1:9090; port 0 picks one; empty disables); executions are identical either way")
	return c
}

// StartTelemetry starts the telemetry hub and HTTP exporter when
// -telemetry was set, printing the bound address (so ":0" requests are
// scrapeable) to out. It returns a nil hub when the flag is unset. The
// exporter lives for the remainder of the process.
func (c *Common) StartTelemetry(out io.Writer) (*telemetry.Hub, error) {
	if c.Telemetry == "" {
		return nil, nil
	}
	hub := telemetry.New()
	srv, err := telemetry.Serve(hub, c.Telemetry)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "telemetry : serving /metrics on %s\n", srv.Addr())
	return hub, nil
}

// TelemetryDrivers lists the drivers that serve the -telemetry flag.
// RejectTelemetry names them, so adding a serving driver here is the
// whole registration — the accept list is maintained data, not prose
// baked into an error string.
var TelemetryDrivers = []string{"locksim", "lockd", "specbench", "ssme"}

// RejectTelemetry returns the uniform error for drivers that accept the
// common flag set but have no telemetry surface to wire it to.
func (c *Common) RejectTelemetry(driver string) error {
	if c.Telemetry == "" {
		return nil
	}
	return fmt.Errorf("-telemetry is not supported by %s (%s serve it)",
		driver, strings.Join(TelemetryDrivers, ", "))
}

// Resolve validates the parsed common flags and returns the engine
// options they select. Every driver calls it right after fs.Parse, so an
// invalid -backend fails with the same error text everywhere.
func (c *Common) Resolve() (sim.Options, error) {
	opts, err := ParseBackend(c.Backend)
	if err != nil {
		return sim.Options{}, err
	}
	opts.Workers = c.Workers
	return opts, nil
}

// EngineSpec returns the scenario-layer engine spec the flags select.
func (c *Common) EngineSpec() scenario.EngineSpec {
	return scenario.EngineSpec{Backend: c.Backend, Workers: c.Workers}
}
