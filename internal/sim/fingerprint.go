package sim

import (
	"fmt"
	"hash/fnv"
)

// Fingerprinting is the identity currency of the harness: differential
// tests hash configurations to prove backend/worker invariance, and the
// campaign layer hashes resolved evaluation cells to key its resumable
// checkpoint journal. Everything uses FNV-1a over a stable rendering, so
// the same logical value fingerprints identically across processes and
// runs.

// Fingerprint64 hashes a byte rendering with FNV-1a.
func Fingerprint64(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// FingerprintConfig hashes a configuration via its %v rendering — the
// cross-construction identity the differential and invariance tests
// compare across backends and worker counts.
func FingerprintConfig[S comparable](c Config[S]) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", c)
	return h.Sum64()
}
