package sim_test

// Engine-level validation of the persistent shard pool and the fused
// synchronous fast path: fingerprint invariance across worker counts and
// shard sizes (ISSUE 7's acceptance grid — Workers ∈ {1,2,4,GOMAXPROCS} ×
// ShardSize ∈ {1,2,DefaultShardSize}), pool reuse across SetConfig, pool
// sharing across engines, the closed-pool inline fallback, and the
// Options validation surface. The unison ring under sd drives the fused
// dense path (full and partial firing fronts); dijkstra under sd stays
// sparse and pins the gate's fallback; the distributed daemon exercises
// the general sharded path with non-aliased selections.

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"specstab/internal/daemon"
	"specstab/internal/dijkstra"
	"specstab/internal/graph"
	"specstab/internal/sim"
	"specstab/internal/unison"
)

// unisonRing builds the flat-capable unison protocol on a ring of n.
func unisonRing(t *testing.T, n int) sim.Protocol[int] {
	t.Helper()
	g := graph.Ring(n)
	p, err := unison.New(g, unison.MinimalParams(g))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// drive runs e for exactly steps transitions (or until terminal).
func drive(t *testing.T, e *sim.Engine[int], steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		progressed, err := e.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !progressed {
			return
		}
	}
}

// workerShardGrid is the acceptance grid of ISSUE 7.
func workerShardGrid() (workers, shardSizes []int) {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}, []int{1, 2, sim.DefaultShardSize}
}

// invarianceCheck drives a sequential generic reference and every
// worker×shard flat variant from the same initial configuration and seed,
// asserting identical fingerprints, counters, and — across the flat
// variants — identical guard-evaluation accounting.
func invarianceCheck(t *testing.T, p sim.Protocol[int], mkd func() sim.Daemon[int], seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	initial := sim.RandomConfig(p, rng)

	ref, err := sim.NewEngineWith(p, mkd(), initial, seed, sim.Options{Backend: sim.BackendGeneric, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, ref, steps)
	wantFP := sim.FingerprintConfig(ref.Current())

	workers, shardSizes := workerShardGrid()
	var guardEvals int64 = -1
	for _, wk := range workers {
		for _, ss := range shardSizes {
			e, err := sim.NewEngineWith(p, mkd(), initial, seed, sim.Options{Backend: sim.BackendFlat, Workers: wk, ShardSize: ss})
			if err != nil {
				t.Fatalf("workers=%d shard=%d: %v", wk, ss, err)
			}
			drive(t, e, steps)
			if fp := sim.FingerprintConfig(e.Current()); fp != wantFP {
				t.Fatalf("workers=%d shard=%d: fingerprint %016x, want %016x", wk, ss, fp, wantFP)
			}
			if e.Steps() != ref.Steps() || e.Moves() != ref.Moves() || e.Rounds() != ref.Rounds() {
				t.Fatalf("workers=%d shard=%d: counters diverge: steps %d/%d moves %d/%d rounds %d/%d",
					wk, ss, e.Steps(), ref.Steps(), e.Moves(), ref.Moves(), e.Rounds(), ref.Rounds())
			}
			if guardEvals < 0 {
				guardEvals = e.GuardEvals()
			} else if e.GuardEvals() != guardEvals {
				t.Fatalf("workers=%d shard=%d: guard accounting diverges across worker counts: %d vs %d",
					wk, ss, e.GuardEvals(), guardEvals)
			}
			e.Close()
		}
	}
}

// TestFusedSyncWorkerShardInvariance: the fused synchronous path (dense
// firing fronts on the packed buffer) must be bitwise invariant across the
// whole worker×shard grid. The odd ring size keeps the firing fronts
// partial on some steps and full on others, covering both fused variants.
func TestFusedSyncWorkerShardInvariance(t *testing.T) {
	t.Parallel()
	p := unisonRing(t, 257)
	for seed := int64(1); seed <= 3; seed++ {
		invarianceCheck(t, p, func() sim.Daemon[int] { return daemon.NewSynchronous[int]() }, seed, 60)
	}
}

// TestDistributedWorkerShardInvariance: non-aliased dense-ish random
// selections take the general sharded path; same invariance grid.
func TestDistributedWorkerShardInvariance(t *testing.T) {
	t.Parallel()
	p := unisonRing(t, 129)
	for seed := int64(1); seed <= 3; seed++ {
		invarianceCheck(t, p, func() sim.Daemon[int] { return daemon.NewDistributed[int](0.5) }, seed, 60)
	}
}

// TestSparseSyncWorkerShardInvariance: dijkstra's ring keeps at most a few
// vertices enabled, so sd stays below the fused gate's density threshold —
// the incremental dirty-set path must survive the same grid unchanged.
func TestSparseSyncWorkerShardInvariance(t *testing.T) {
	t.Parallel()
	p := dijkstra.MustNew(33, 33)
	for seed := int64(1); seed <= 3; seed++ {
		invarianceCheck(t, p, func() sim.Daemon[int] { return daemon.NewSynchronous[int]() }, seed, 120)
	}
}

// TestPoolReuseAcrossSetConfig: SetConfig re-encodes and refreshes through
// the pool's barrier mid-execution; the same engine (and pool) must then
// keep replaying the sequential reference exactly — start/reuse of the
// barrier across fault injection, under the race detector in CI.
func TestPoolReuseAcrossSetConfig(t *testing.T) {
	t.Parallel()
	p := unisonRing(t, 64)
	rng := rand.New(rand.NewSource(7))
	initial := sim.RandomConfig(p, rng)
	inject := sim.RandomConfig(p, rng)

	ref, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, 7, sim.Options{Backend: sim.BackendFlat, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, 7, sim.Options{Backend: sim.BackendFlat, Workers: 4, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()

	for phase := 0; phase < 3; phase++ {
		drive(t, ref, 15)
		drive(t, par, 15)
		if got, want := sim.FingerprintConfig(par.Current()), sim.FingerprintConfig(ref.Current()); got != want {
			t.Fatalf("phase %d: fingerprint %016x, want %016x", phase, got, want)
		}
		if err := ref.SetConfig(inject); err != nil {
			t.Fatal(err)
		}
		if err := par.SetConfig(inject); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSharedPoolAcrossEngines: several engines on one explicit Pool —
// the campaign sweep topology — interleaved step by step, each replaying
// its solo sequential run; closing the shared pool mid-flight degrades to
// inline execution without changing anything.
func TestSharedPoolAcrossEngines(t *testing.T) {
	t.Parallel()
	pool := sim.NewPool(4)
	defer pool.Close()
	p := unisonRing(t, 96)

	const engines, steps = 3, 30
	var shared, solo []*sim.Engine[int]
	for i := 0; i < engines; i++ {
		seed := int64(i + 1)
		rng := rand.New(rand.NewSource(seed))
		initial := sim.RandomConfig(p, rng)
		s, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, seed,
			sim.Options{Backend: sim.BackendFlat, Workers: 4, ShardSize: 1, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, seed, sim.Options{Backend: sim.BackendFlat, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		shared, solo = append(shared, s), append(solo, r)
	}
	for step := 0; step < steps; step++ {
		if step == steps/2 {
			pool.Close() // the rest of the execution runs inline
		}
		for i := range shared {
			drive(t, shared[i], 1)
			drive(t, solo[i], 1)
		}
	}
	for i := range shared {
		if got, want := sim.FingerprintConfig(shared[i].Current()), sim.FingerprintConfig(solo[i].Current()); got != want {
			t.Fatalf("engine %d: fingerprint %016x, want %016x", i, got, want)
		}
	}
}

// TestEngineCloseInlineFallback: Close mid-execution is allowed, is
// idempotent, and later steps run inline with unchanged results.
func TestEngineCloseInlineFallback(t *testing.T) {
	t.Parallel()
	p := unisonRing(t, 80)
	rng := rand.New(rand.NewSource(5))
	initial := sim.RandomConfig(p, rng)

	ref, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, 5, sim.Options{Backend: sim.BackendFlat, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, 5, sim.Options{Backend: sim.BackendFlat, Workers: 4, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, ref, 40)
	drive(t, e, 20)
	e.Close()
	e.Close() // idempotent
	drive(t, e, 20)
	if got, want := sim.FingerprintConfig(e.Current()), sim.FingerprintConfig(ref.Current()); got != want {
		t.Fatalf("post-Close execution diverged: %016x vs %016x", got, want)
	}
}

// TestOptionsValidation pins the constructor's rejection of negative
// parallelism parameters and the Workers-from-Pool default.
func TestOptionsValidation(t *testing.T) {
	t.Parallel()
	p := unisonRing(t, 8)
	rng := rand.New(rand.NewSource(1))
	initial := sim.RandomConfig(p, rng)
	d := daemon.NewSynchronous[int]()

	if _, err := sim.NewEngineWith(p, d, initial, 1, sim.Options{Workers: -1}); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Fatalf("negative Workers: got %v, want an Options.Workers error", err)
	}
	if _, err := sim.NewEngineWith(p, d, initial, 1, sim.Options{ShardSize: -3}); err == nil || !strings.Contains(err.Error(), "ShardSize") {
		t.Fatalf("negative ShardSize: got %v, want an Options.ShardSize error", err)
	}

	pool := sim.NewPool(3)
	defer pool.Close()
	e, err := sim.NewEngineWith(p, d, initial, 1, sim.Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 3 {
		t.Fatalf("Workers defaulted to %d, want the pool width 3", e.Workers())
	}
}
