package lint

// Policy is the repository's audit configuration: which packages carry the
// determinism contract, and which sites are allowed to touch wall-clock
// time. Tests substitute small policies; everything else uses Default.
//
// Adding a new deterministic package (DESIGN.md §10): append its import
// path to deterministicPkgs — nothing else. The wallclock analyzer audits
// every package of the module, so a new package is covered there the
// moment it exists; exemptions must be claimed here, loudly, not inline.
type Policy struct {
	// Deterministic marks the packages whose executions must be bitwise
	// reproducible across backends, worker counts and runs: detmap and
	// detrand apply only here.
	Deterministic map[string]bool
	// WallclockExemptPkgs lists whole packages whose business is real
	// time (the asynchronous network runtime, its example driver).
	WallclockExemptPkgs map[string]bool
	// WallclockExemptFiles lists module-relative files with sanctioned
	// wall-clock reads (experiment timing columns). Bench and test files
	// are outside the audit entirely — speclint analyzes non-test
	// sources.
	WallclockExemptFiles map[string]bool
	// GoroutineExemptFiles lists module-relative files allowed to contain
	// raw go statements inside deterministic packages — the approved
	// worker-pool implementations whose barriers the determinism argument
	// covers (DESIGN.md §11). Everything else in a deterministic package
	// must dispatch through those pools.
	GoroutineExemptFiles map[string]bool
	// RegistryPkg is the package whose protocol registry the capability
	// analyzer cross-checks against the differential test matrix.
	RegistryPkg string
}

// Default returns the repository policy.
func Default() *Policy {
	return &Policy{
		Deterministic: set(
			// The engine and its execution layers (DESIGN.md §6–§9).
			"specstab/internal/sim",
			"specstab/internal/daemon",
			"specstab/internal/scenario",
			"specstab/internal/campaign",
			"specstab/internal/service",
			"specstab/internal/graph",
			// The protocol packages and their composition.
			"specstab/internal/core",
			"specstab/internal/unison",
			"specstab/internal/dijkstra",
			"specstab/internal/bfstree",
			"specstab/internal/matching",
			"specstab/internal/lexclusion",
			"specstab/internal/compose",
			// Deterministic supporting layers: clock arithmetic, the
			// formal spec/check machinery, fault injection, measurement.
			"specstab/internal/clock",
			"specstab/internal/spec",
			"specstab/internal/check",
			"specstab/internal/faults",
			"specstab/internal/speculation",
			"specstab/internal/stats",
			"specstab/internal/trace",
			"specstab/internal/experiments",
			// Telemetry collects on the deterministic state path (hooks,
			// fold callbacks): its collection side obeys the full contract.
			// Its two sink files carry the exemptions claimed below.
			"specstab/internal/telemetry",
			// The networked runtime's round loop is a BSP superstep over
			// the flat kernels — deterministic given the journaled schedule
			// (the replay oracle pins it). Its transport, client-server and
			// harness files carry the exemptions claimed below.
			"specstab/internal/netrun",
		),
		WallclockExemptPkgs: set(
			// The concurrent runtime schedules real goroutines against
			// real time; wall-clock is its subject matter, not a leak.
			"specstab/internal/concurrent",
			// examples/resource drives that runtime interactively.
			"specstab/examples/resource",
		),
		WallclockExemptFiles: set(
			// E12's wall-clock throughput columns: timing is the payload.
			"internal/experiments/e12_scaling.go",
			// The JSONL sink stamps events with wall time at the sink
			// boundary only — series and events carry logical ticks.
			"internal/telemetry/jsonl.go",
			// netrun's entire wall-clock surface: frame deadlines, dial
			// backoff, barrier patience. Everything above it reasons in
			// rounds (leases included), which is what keeps the journal
			// replayable.
			"internal/netrun/transport.go",
			// The barrier's stall timer and the receive pump's blocking
			// reads: the concurrent barrier's only clock, paired with
			// transport.go's deadlines.
			"internal/netrun/pump.go",
		),
		GoroutineExemptFiles: set(
			// The persistent shard pool behind the engine's parallel
			// phases: workers park on wake channels and join through a
			// done-token barrier before any result is read.
			"internal/sim/pool.go",
			// The campaign grid scheduler: cell×trial fan-out with a
			// deterministic grid-order fold.
			"internal/campaign/pool.go",
			// The HTTP exporter's serve loop: it only reads mutex-guarded
			// snapshots, never the simulation state, so the goroutine
			// cannot perturb an execution.
			"internal/telemetry/http.go",
			// netrun's concurrency boundary: the per-connection write pump,
			// the client HTTP server, and the in-process cluster harness's
			// per-node round loops. The round loop itself never spawns — a
			// node's execution is single-threaded between barriers.
			"internal/netrun/transport.go",
			"internal/netrun/httpd.go",
			"internal/netrun/cluster.go",
			// The per-peer receive pumps feeding the round barrier's
			// mailboxes: they only decode and park frames — every commit
			// still happens on the single round-loop goroutine, after the
			// barrier has one same-round frame from every peer.
			"internal/netrun/pump.go",
		),
		RegistryPkg: "specstab/internal/scenario",
	}
}

func set(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}
