package daemon

// Recorded is the replay daemon of the networked runtime's differential
// oracle (internal/netrun, DESIGN.md §13): it holds a schedule recorded
// from a live execution — the vertices that activated at each round — and
// replays it verbatim, one entry per Select call. It makes no decisions of
// its own; the engine's own validation (sim.ErrDaemonSelection) is the
// oracle's teeth: a recorded vertex that is not enabled in the replayed
// configuration, or an exhausted schedule, fails the replay loudly instead
// of silently diverging.

import (
	"fmt"
	"math/rand"

	"specstab/internal/sim"
)

// Recorded replays a fixed activation schedule.
type Recorded[S comparable] struct {
	schedule [][]int
	next     int
}

// NewRecorded returns a daemon replaying schedule: Select call i returns
// schedule[i]. The schedule is retained, not copied — recorded journals
// can be large, and the daemon only reads.
func NewRecorded[S comparable](schedule [][]int) *Recorded[S] {
	return &Recorded[S]{schedule: schedule}
}

// Name implements sim.Daemon.
func (d *Recorded[S]) Name() string {
	return fmt.Sprintf("recorded[%d rounds]", len(d.schedule))
}

// Select implements sim.Daemon: the next recorded selection, verbatim. An
// exhausted schedule returns nil, which the engine rejects as an empty
// selection — stepping past the recording is a caller bug, not a replay.
func (d *Recorded[S]) Select(_ sim.Config[S], _ []int, _ *rand.Rand) []int {
	if d.next >= len(d.schedule) {
		return nil
	}
	sel := d.schedule[d.next]
	d.next++
	return sel
}

// Consumed returns the number of schedule entries replayed so far.
func (d *Recorded[S]) Consumed() int { return d.next }

var _ sim.Daemon[int] = (*Recorded[int])(nil)
