// Package scenario is the declarative run layer: a Scenario value names —
// rather than hand-wires — everything one execution of the paper's
// evaluation grid needs (protocol × topology × daemon × backend × initial
// configuration × workload × fault storm × stop condition × observers),
// validates it against named registries of constructors, builds the typed
// engine or service simulation behind a type-erased Run, and executes it
// with any number of observers attached to the engine's hook pipeline.
//
// Scenarios round-trip through JSON, so an evaluation cell is a shareable
// file (`locksim -scenario file.json`) instead of a bespoke main(): the
// variant scenarios the literature suggests — Dolev & Herman's
// unsupportive environments, Hoepman's ring variants — become data
// changes, not code changes. Every cmd/ driver and the experiment harness
// construct their runs through this layer (DESIGN.md §8); scenario-built
// runs are bitwise identical to hand-built ones (differential-tested).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"specstab/internal/sim"
	"specstab/internal/telemetry"
)

// Scenario is one declarative run specification. The zero value of every
// optional field means "registry default" (documented per field); the
// mandatory fields are Protocol.Name and Topology.Name/N. Scenarios are
// plain data: Build resolves the names against the registries and returns
// a runnable Run.
type Scenario struct {
	// Name labels the scenario in reports and files; it has no semantics.
	Name string `json:"name,omitempty"`
	// Seed drives all randomness — topology generation, initial
	// configurations, daemon choices, workload arrivals. Zero is a valid
	// seed (scenarios built from flags inherit the drivers' default of 1).
	Seed int64 `json:"seed,omitempty"`
	// Protocol names the protocol under execution and its parameters.
	Protocol ProtocolSpec `json:"protocol"`
	// Topology names the communication graph.
	Topology TopologySpec `json:"topology"`
	// Daemon names the adversary (default: sync).
	Daemon DaemonSpec `json:"daemon,omitempty"`
	// Engine selects the execution backend and shard workers; executions
	// are bitwise identical for every choice (DESIGN.md §6).
	Engine EngineSpec `json:"engine,omitempty"`
	// Init selects the initial-configuration policy (default: the
	// protocol's registry default — a legitimate start for locks, random
	// for everything else).
	Init InitSpec `json:"init,omitempty"`
	// Workload, when present, routes the run through the mutual-exclusion
	// service layer (internal/service): the protocol must expose
	// privileges (ssme, dijkstra, lexclusion).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Storm, when present, runs a fault campaign against the running
	// service (requires Workload).
	Storm *StormSpec `json:"storm,omitempty"`
	// Stop bounds the run.
	Stop StopSpec `json:"stop,omitempty"`
	// Observers names the measurement pipeline attached to the engine.
	Observers []ObserverSpec `json:"observers,omitempty"`
	// Telemetry is the hub the "telemetry" observer publishes to — a
	// runtime handle like Engine.Pool, injected by drivers that serve
	// /metrics, never serialized. Nil means the observer runs against a
	// detached hub of its own (reachable via Run.Observer("telemetry")).
	Telemetry *telemetry.Hub `json:"-"`
}

// ProtocolSpec names a protocol and its parameters. Unused parameters must
// stay zero; the registry rejects parameters the named protocol does not
// understand only when they would silently change semantics (topology
// compatibility), otherwise they are ignored.
type ProtocolSpec struct {
	// Name is the registry name: ssme, unison, dijkstra, bfstree,
	// matching, lexclusion, product.
	Name string `json:"name"`
	// K is dijkstra's counter-state count (0 = n, the smallest correct
	// choice).
	K int `json:"k,omitempty"`
	// L is ℓ-exclusion's concurrency level (0 = 2).
	L int `json:"l,omitempty"`
	// Root is bfstree's root vertex.
	Root int `json:"root,omitempty"`
	// Minimal selects unison's minimal clock parameters instead of the
	// SSME-safe ones.
	Minimal bool `json:"minimal,omitempty"`
	// Unchecked skips dijkstra's K ≥ n validation — the deliberate
	// mis-parameterization that demonstrates divergence.
	Unchecked bool `json:"unchecked,omitempty"`
	// Factors are the two component protocols of a product.
	Factors []ProtocolSpec `json:"factors,omitempty"`
}

// TopologySpec names a communication graph from internal/graph.
type TopologySpec struct {
	// Name is the registry name (see TopologyNames).
	Name string `json:"name"`
	// N is the main size parameter (vertices; ignored by petersen).
	N int `json:"n,omitempty"`
}

// DaemonSpec names an adversary.
type DaemonSpec struct {
	// Name is the registry name (see DaemonNames); empty means sync.
	Name string `json:"name,omitempty"`
	// P is the activation probability of the distributed daemon (out of
	// range falls back to 0.5).
	P float64 `json:"p,omitempty"`
	// Schedule is the activation schedule replayed by the recorded daemon
	// — a runtime handle like Engine.Pool, injected by the netrun replay
	// oracle (journals carry it), never serialized.
	Schedule [][]int `json:"-"`
}

// EngineSpec selects the execution backend and parallelism of the
// underlying sim.Engine. Every choice produces the identical execution;
// only the cost of producing it changes.
type EngineSpec struct {
	// Backend is "", "auto", "generic" or "flat".
	Backend string `json:"backend,omitempty"`
	// Workers bounds the shard workers of the parallel evaluate phase
	// (0 = GOMAXPROCS, or the width of Pool when one is set).
	Workers int `json:"workers,omitempty"`
	// LenientFlat makes "flat" fall back to the generic backend when the
	// protocol lacks the Flat capability instead of failing — the sweep
	// semantics of the experiment harness. JSON scenarios normally leave
	// it false: asking for flat on a protocol without a codec is an error.
	LenientFlat bool `json:"lenientFlat,omitempty"`
	// Pool is a shared persistent worker pool for the engine's sharded
	// phases — a runtime handle, not part of the declarative spec (the
	// campaign layer injects one so every cell×trial engine of a sweep
	// reuses the same worker goroutines). Nil means each engine owns its
	// pool. Never serialized.
	Pool *sim.Pool `json:"-"`
}

// InitSpec selects the initial-configuration policy.
type InitSpec struct {
	// Mode is the registry name (see InitModes): "" (protocol default),
	// random, zero, uniform, worst, clean.
	Mode string `json:"mode,omitempty"`
	// Value parameterizes uniform (the register value every vertex gets).
	Value int `json:"value,omitempty"`
}

// WorkloadSpec names a client population for the service layer.
type WorkloadSpec struct {
	// Kind is the registry name: closed or open.
	Kind string `json:"kind"`
	// Clients is the closed-loop population (0 = 2n).
	Clients int `json:"clients,omitempty"`
	// ThinkMin/ThinkMax bound closed-loop think times in ticks.
	ThinkMin int `json:"thinkMin,omitempty"`
	ThinkMax int `json:"thinkMax,omitempty"`
	// Rate is the open-loop mean arrival rate per tick.
	Rate float64 `json:"rate,omitempty"`
	// Hold is the critical-section hold time in ticks (0 = 1).
	Hold int `json:"hold,omitempty"`
	// Capacity bounds concurrent grants (0 = the lock's natural capacity:
	// ℓ for ℓ-exclusion, 1 otherwise).
	Capacity int `json:"capacity,omitempty"`
}

// StormSpec configures a fault campaign against the running service.
type StormSpec struct {
	// Bursts is the number of fault bursts (must be ≥ 1).
	Bursts int `json:"bursts"`
	// Corrupt is the registers corrupted per burst (0 = all).
	Corrupt int `json:"corrupt,omitempty"`
	// WarmTicks runs before each burst (0 = the resolved tick budget,
	// i.e. Stop.Ticks or one service window).
	WarmTicks int `json:"warmTicks,omitempty"`
	// HorizonTicks bounds the post-burst wait for the grant stream
	// (0 = 8 service windows).
	HorizonTicks int `json:"horizonTicks,omitempty"`
	// SettleTicks extends the post-burst window (0 = half a window).
	SettleTicks int `json:"settleTicks,omitempty"`
}

// StopSpec bounds a run.
type StopSpec struct {
	// Steps bounds protocol runs (0 = the protocol's service window, or
	// 8n when it declares none).
	Steps int `json:"steps,omitempty"`
	// Ticks bounds service runs (0 = one service window).
	Ticks int `json:"ticks,omitempty"`
	// UntilLegitimate stops a protocol run as soon as the configuration is
	// legitimate (requires a protocol with a legitimacy predicate).
	UntilLegitimate bool `json:"untilLegitimate,omitempty"`
}

// ObserverSpec names one observer of the measurement pipeline.
type ObserverSpec struct {
	// Name is the registry name (see ObserverNames): convergence, trace,
	// guards, speculation, service, steplog.
	Name string `json:"name"`
	// Every is the snapshot stride for trace/steplog (0 = 1).
	Every int `json:"every,omitempty"`
}

// Encode writes sc as indented JSON.
func (sc *Scenario) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// Parse decodes one scenario from JSON, rejecting unknown fields so typos
// in hand-written files fail loudly instead of silently running defaults.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
