package main

// Smoke tests: flag parsing, one service run per protocol, and a storm.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunClosedLoopSSME(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "ssme", "-n", "8", "-ticks", "400"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"lock service", "SSME@ring-8", "service totals", "grants/tick", "jain"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRunOpenLoopDijkstra(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "dijkstra", "-n", "8", "-workload", "open", "-rate", "0.4", "-ticks", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dijkstra-kstate") {
		t.Fatalf("report missing protocol name:\n%s", out.String())
	}
}

func TestRunStormLExclusion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "lexclusion", "-n", "8", "-l", "2", "-bursts", "1", "-ticks", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fault storm", "stall ticks", "legit ticks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("storm report missing %q:\n%s", want, s)
		}
	}
}

func TestRunBackendsAgree(t *testing.T) {
	drive := func(backend string) string {
		var out bytes.Buffer
		if err := run([]string{"-protocol", "ssme", "-n", "9", "-daemon", "distributed",
			"-ticks", "300", "-backend", backend}, &out); err != nil {
			t.Fatal(err)
		}
		// Strip the header line, which names the backend.
		_, rest, _ := strings.Cut(out.String(), "\n")
		return rest
	}
	if drive("generic") != drive("flat") {
		t.Fatal("service reports diverge between generic and flat backends")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-protocol", "nonsense"},
		{"-protocol", "dijkstra", "-topology", "grid"},
		{"-workload", "nonsense"},
		{"-daemon", "nonsense"},
		{"-backend", "nonsense"},
		{"-bogus"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("want error for %v", args)
		}
	}
}
