package speculation

import (
	"strings"
	"testing"
)

func TestPartialOrder(t *testing.T) {
	t.Parallel()
	// Definition 2's examples: ud is more powerful than every daemon;
	// sd and cd are incomparable.
	all := []DaemonClass{Synchronous, Central, Distributed, UnfairDistributed}
	for _, d := range all {
		if !MorePowerful(UnfairDistributed, d) {
			t.Errorf("ud should dominate %s", d)
		}
		if !MorePowerful(d, d) {
			t.Errorf("%s should be reflexively comparable", d)
		}
		if d != UnfairDistributed && MorePowerful(d, UnfairDistributed) {
			t.Errorf("%s must not dominate ud", d)
		}
	}
	if Comparable(Synchronous, Central) {
		t.Error("sd and cd are incomparable (the paper's example)")
	}
	if !MorePowerful(Distributed, Synchronous) || !MorePowerful(Distributed, Central) {
		t.Error("the distributed daemon subsumes both sd and cd")
	}
	if got := UnfairDistributed.String(); got != "ud" {
		t.Errorf("String() = %q", got)
	}
	if got := DaemonClass(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class renders %q", got)
	}
}

func square(points []CurvePoint) []CurvePoint { return points }

func TestMeasureAndSeparation(t *testing.T) {
	t.Parallel()
	claim := Claim{
		Protocol:       "toy",
		Strong:         UnfairDistributed,
		Weak:           Synchronous,
		StrongExponent: 2,
		WeakExponent:   1,
	}
	var strong, weak []CurvePoint
	for _, n := range []int{4, 8, 16, 32} {
		strong = append(strong, CurvePoint{Size: n, Conv: float64(n * n)})
		weak = append(weak, CurvePoint{Size: n, Conv: float64(n)})
	}
	cert, err := Measure(claim, square(strong), weak)
	if err != nil {
		t.Fatal(err)
	}
	if cert.StrongFit.Exponent < 1.95 || cert.StrongFit.Exponent > 2.05 {
		t.Errorf("strong exponent %v", cert.StrongFit.Exponent)
	}
	if cert.WeakFit.Exponent < 0.95 || cert.WeakFit.Exponent > 1.05 {
		t.Errorf("weak exponent %v", cert.WeakFit.Exponent)
	}
	if !cert.Separated(0.3) {
		t.Error("exact n² vs n curves must separate")
	}
	out := cert.String()
	for _, want := range []string{"toy", "ud", "sd", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("certificate rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestMeasureRejectsDegenerateCurves(t *testing.T) {
	t.Parallel()
	claim := Claim{Protocol: "bad", Strong: UnfairDistributed, Weak: Synchronous}
	if _, err := Measure(claim, nil, nil); err == nil {
		t.Error("want error for empty curves")
	}
}

func TestNotSeparatedWhenFlat(t *testing.T) {
	t.Parallel()
	claim := Claim{
		Protocol: "flat", Strong: UnfairDistributed, Weak: Synchronous,
		StrongExponent: 2, WeakExponent: 1,
	}
	var same []CurvePoint
	for _, n := range []int{4, 8, 16} {
		same = append(same, CurvePoint{Size: n, Conv: float64(n)})
	}
	cert, err := Measure(claim, same, same)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Separated(0.3) {
		t.Error("identical curves must not separate against a gap-1 claim")
	}
}
