package netrun

// The peer transport: length-prefixed frames over TCP with deadlines on
// every read and write, bounded dial retry with linear backoff, and a
// per-connection write pump so one slow receiver cannot wedge a sender's
// round loop. This file (together with pump.go and httpd.go) is the
// runtime's entire wall-clock surface — everything above it reasons in
// rounds, and the speclint policy pins that boundary (internal/lint:
// netrun is audited; transport.go, pump.go and httpd.go carry the
// exemptions).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport defaults, overridable per node (Config). The IO timeout is
// the barrier's patience quantum: a Recv that exceeds it counts one
// stall, and RecvRetries stalls abandon the round.
const (
	defaultIOTimeout   = 2 * time.Second
	defaultDialRetries = 40
	defaultDialBackoff = 25 * time.Millisecond
	// sendDepth is the write pump's queue depth; the round loop enqueues
	// at most one frame per peer per round, so depth covers transient
	// receiver lag without unbounded buffering.
	sendDepth = 8
)

// wireBuf is one pooled, refcounted encode buffer: the round loop
// encodes a frame once (length prefix included) and fans the same bytes
// out to every peer's write pump, each holding one reference. The last
// release — normally a pump, after the wire write — returns the buffer
// to the pool, so the steady state encodes every round into memory it
// already owns. Acquire with acquireWire (refs=1, the caller's), retain
// once per additional holder, release symmetric.
type wireBuf struct {
	b    []byte
	refs atomic.Int32
}

var wirePool = sync.Pool{New: func() any { return new(wireBuf) }}

// acquireWire returns an empty buffer holding one reference for the
// caller.
func acquireWire() *wireBuf {
	w := wirePool.Get().(*wireBuf)
	w.b = w.b[:0]
	w.refs.Store(1)
	return w
}

func (w *wireBuf) retain() { w.refs.Add(1) }

func (w *wireBuf) release() {
	if w.refs.Add(-1) == 0 {
		wirePool.Put(w)
	}
}

// Conn is one framed peer connection. Reads happen on a single owner
// goroutine (the handshake, then the receive pump) through a reusable
// buffer; writes go through a pump goroutine fed by a bounded queue of
// pooled buffers, so Send never blocks the round loop for longer than it
// takes the queue to drain.
type Conn struct {
	nc      net.Conn
	br      *bufio.Reader
	timeout time.Duration
	rbuf    []byte // reusable receive payload buffer (single reader)
	rdArmed bool   // a read deadline is set and must be cleared for blocking reads

	out  chan *wireBuf
	quit chan struct{}
	done chan struct{}

	// Write-pump scratch (pump goroutine only): the drained batch, the
	// stable iovec backing, and the consumable net.Buffers view writev
	// advances. Keeping the view a field stops it escaping per write.
	batch []*wireBuf
	vecs  [][]byte
	vb    net.Buffers

	mu     sync.Mutex
	err    error
	closed bool
}

// newConn wraps an established TCP connection and starts its write pump.
func newConn(nc net.Conn, timeout time.Duration) *Conn {
	if timeout <= 0 {
		timeout = defaultIOTimeout
	}
	c := &Conn{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 1<<16),
		timeout: timeout,
		rbuf:    make([]byte, 4096),
		out:     make(chan *wireBuf, sendDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.pump()
	return c
}

// pump drains the send queue onto the socket in batches: everything
// already queued goes out under one deadline arm and one syscall (a
// plain Write for a single frame, writev via net.Buffers for several).
// The first write error poisons the connection: subsequent Sends fail
// fast with it instead of queueing into the void. On Close it flushes
// what is already queued (a just-enqueued bye must reach the peer),
// then exits. Buffers are released here, after the wire write — for a
// fanned-out round frame the pump of the slowest peer is the one that
// returns the encode buffer to the pool.
func (c *Conn) pump() {
	defer close(c.done)
	c.batch = make([]*wireBuf, 0, sendDepth)
	c.vecs = make([][]byte, 0, sendDepth)
	for {
		select {
		case w := <-c.out:
			if !c.drain(w) {
				return
			}
		case <-c.quit:
			for {
				select {
				case w := <-c.out:
					if !c.drain(w) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// drain gathers w plus whatever else is already queued and writes the
// batch with writeBatch, releasing every buffer afterwards regardless
// of outcome.
func (c *Conn) drain(w *wireBuf) bool {
	batch := append(c.batch[:0], w)
gather:
	for len(batch) < cap(batch) {
		select {
		case more := <-c.out:
			batch = append(batch, more)
		default:
			break gather
		}
	}
	ok := c.writeBatch(batch)
	for i, bw := range batch {
		bw.release()
		batch[i] = nil
	}
	return ok
}

// writeBatch puts one batch of wire frames on the socket under a single
// deadline arm. Payloads are already length-prefixed (AppendWireFrame),
// so one frame is one plain Write and several frames are one vectored
// write — there is no separate prefix syscall to pay for, or to tear on
// a mid-frame kill.
func (c *Conn) writeBatch(batch []*wireBuf) bool {
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		c.fail(fmt.Errorf("netrun: arming write deadline: %w", err))
		return false
	}
	if len(batch) == 1 {
		if _, err := c.nc.Write(batch[0].b); err != nil {
			c.fail(fmt.Errorf("netrun: writing frame: %w", err))
			return false
		}
		return true
	}
	vecs := c.vecs[:0]
	for _, w := range batch {
		vecs = append(vecs, w.b)
	}
	// WriteTo consumes the view (and may reslice its elements on short
	// writes): c.vb is rebuilt from the stable c.vecs backing per batch,
	// so only the view is advanced.
	c.vb = net.Buffers(vecs)
	if _, err := c.vb.WriteTo(c.nc); err != nil {
		c.fail(fmt.Errorf("netrun: writing frame batch: %w", err))
		return false
	}
	return true
}

// AppendWireFrame appends f's complete wire encoding — the transport's
// 4-byte big-endian length prefix followed by the frame payload — to dst
// and returns the extended slice. Encoding the prefix into the same
// buffer is what lets the write pump put a whole frame on the socket in
// one syscall (and batch several frames into one writev).
func AppendWireFrame(dst []byte, f *Frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := AppendFrame(dst, f)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst, nil
}

// fail records the connection's first error.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// Err returns the connection's first recorded error, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Send enqueues one wire-encoded (length-prefixed) buffer, consuming
// one reference whether or not it succeeds: on success the write pump
// releases it after the wire write, on failure Send releases it here.
// The fast path is a non-blocking enqueue — the queue has headroom in
// the steady state, so no timer is armed (time.After in a select
// allocates a timer per call) unless the pump is actually behind. A
// full queue past the IO timeout, a poisoned connection and a closed
// connection are all errors.
func (c *Conn) Send(w *wireBuf) error {
	if len(w.b)-4 > MaxFrame {
		w.release()
		return fmt.Errorf("netrun: sending %d bytes exceeds MaxFrame %d", len(w.b), MaxFrame)
	}
	if err := c.Err(); err != nil {
		w.release()
		return err
	}
	select {
	case c.out <- w:
		return nil
	default:
	}
	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case c.out <- w:
		return nil
	case <-c.quit:
		w.release()
		return errors.New("netrun: send on closed connection")
	case <-c.done:
		w.release()
		if err := c.Err(); err != nil {
			return err
		}
		return errors.New("netrun: send on closed connection")
	case <-t.C:
		w.release()
		return fmt.Errorf("netrun: peer not draining writes for %v", c.timeout)
	}
}

// Recv reads one frame payload, waiting at most the IO timeout. Timeout
// errors satisfy net.Error.Timeout() — the barrier retries those as
// stalls; any other error is a dead or corrupt peer. The returned slice
// aliases the connection's reusable receive buffer and is valid only
// until the next Recv on this connection.
func (c *Conn) Recv() ([]byte, error) { return c.recvWithin(c.timeout) }

// RecvPatient reads one frame with an explicit patience window — the
// handshake path, where a peer that has connected may still be dialing
// the rest of the mesh before it answers hellos.
func (c *Conn) RecvPatient(d time.Duration) ([]byte, error) { return c.recvWithin(d) }

// RecvBlocking reads one frame with no read deadline: the receive pump
// parks here between frames, and stall patience is the barrier's job
// (a stalled peer leaves the pump blocked; Close unblocks it through
// the socket). Same aliasing rule as Recv.
func (c *Conn) RecvBlocking() ([]byte, error) { return c.recvWithin(0) }

func (c *Conn) recvWithin(d time.Duration) ([]byte, error) {
	// Arm or clear the read deadline only when the mode changes — the
	// receive pump calls this with d=0 every frame, and re-clearing an
	// already-clear deadline is pure timer churn.
	if d > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(d)); err != nil {
			return nil, fmt.Errorf("netrun: arming read deadline: %w", err)
		}
		c.rdArmed = true
	} else if c.rdArmed {
		if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("netrun: arming read deadline: %w", err)
		}
		c.rdArmed = false
	}
	// The prefix reads into the head of the persistent receive buffer —
	// a stack array would escape through the io.ReadFull interface call.
	prefix := c.rbuf[:4]
	if _, err := io.ReadFull(c.br, prefix); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix)
	if n > MaxFrame {
		return nil, fmt.Errorf("netrun: peer announces a %d-byte frame, above MaxFrame %d", n, MaxFrame)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	payload := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, fmt.Errorf("netrun: frame body: %w", err)
	}
	return payload, nil
}

// isTimeout reports whether err is a read deadline expiring — the one
// error class the barrier treats as "slow", not "gone".
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close shuts the connection down. Safe to call more than once; the
// round loop is the only Sender, so closing the queue here cannot race a
// concurrent Send after closed is set.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	// Let the pump flush queued frames (each bounded by the write
	// deadline) before the socket goes away: a bye enqueued just before
	// Close must reach the peer.
	close(c.quit)
	<-c.done
	return c.nc.Close()
}

// dialPeer establishes a framed connection to addr, retrying up to
// retries times with linearly growing backoff — enough patience for a
// peer process that is still binding its listener, bounded enough that a
// never-starting peer fails the run instead of hanging it.
func dialPeer(addr string, retries int, backoff, timeout time.Duration) (*Conn, error) {
	if retries <= 0 {
		retries = defaultDialRetries
	}
	if backoff <= 0 {
		backoff = defaultDialBackoff
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * backoff)
		}
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return newConn(nc, timeout), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("netrun: dialing %s: gave up after %d attempts: %w", addr, retries+1, lastErr)
}

// acceptPeer waits for one inbound connection, bounded by deadline
// support when the listener offers it (TCP listeners do).
func acceptPeer(ln net.Listener, patience, timeout time.Duration) (*Conn, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		if err := d.SetDeadline(time.Now().Add(patience)); err != nil {
			return nil, fmt.Errorf("netrun: arming accept deadline: %w", err)
		}
	}
	nc, err := ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("netrun: accepting peer: %w", err)
	}
	return newConn(nc, timeout), nil
}

// pace sleeps the configured inter-round interval; the round loop calls
// it so every other file stays free of wall-clock time.
func pace(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
