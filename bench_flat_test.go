// Micro-benchmarks of the flat execution backend (DESIGN.md §6): guard
// evaluations per second for the batch kernels vs the generic interface
// path, and ns/step for whole synchronous engine steps, generic vs flat,
// on rings of 4096 and 65536 vertices. BENCH_flat.json records a baseline
// run; EXPERIMENTS.md quotes the acceptance figures (E12b/E12c report the
// same quantities from the experiment harness).
//
// Run with:
//
//	go test -bench=Flat -benchmem
package specstab_test

import (
	"fmt"
	"math/rand"
	"testing"

	"specstab/internal/bfstree"
	"specstab/internal/compose"
	"specstab/internal/daemon"
	"specstab/internal/dijkstra"
	"specstab/internal/graph"
	"specstab/internal/sim"
	"specstab/internal/unison"
)

// ringUnison builds unison with the paper's safe parameters on a ring —
// from the uniform-0 configuration every vertex fires NA forever, the
// full-width steady state that makes step costs comparable across b.N.
func ringUnison(tb testing.TB, n int) (*unison.Protocol, sim.Config[int]) {
	tb.Helper()
	g := graph.Ring(n)
	p, err := unison.New(g, unison.SafeParams(g))
	if err != nil {
		tb.Fatal(err)
	}
	return p, make(sim.Config[int], n)
}

// BenchmarkFlatGuardEvalsUnisonRing measures raw guard-evaluation
// throughput: the generic interface path vs the flat batch kernel over
// the same packed/boxed configuration (65536-vertex ring, steady state).
func BenchmarkFlatGuardEvalsUnisonRing(b *testing.B) {
	const n = 65536
	p, cfg := ringUnison(b, n)
	st := make([]int64, n)
	vs := make([]int, n)
	rules := make([]sim.Rule, n)
	for v := 0; v < n; v++ {
		vs[v] = v
		p.EncodeState(v, cfg[v], st[v:v+1])
	}

	b.Run("generic", func(b *testing.B) {
		evals := 0
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				if _, ok := p.EnabledRule(cfg, v); ok {
					evals++
				}
			}
		}
		b.ReportMetric(float64(n), "guard-evals/op")
		if evals == 0 {
			b.Fatal("steady state must be enabled everywhere")
		}
	})
	b.Run("flat", func(b *testing.B) {
		evals := 0
		for i := 0; i < b.N; i++ {
			p.EnabledRuleFlat(st, 1, 0, vs, rules)
			for _, r := range rules {
				if r != sim.NoRule {
					evals++
				}
			}
		}
		b.ReportMetric(float64(n), "guard-evals/op")
		if evals == 0 {
			b.Fatal("steady state must be enabled everywhere")
		}
	})
}

// benchStep drives one engine step per iteration and reports
// guard-evals/step.
func benchStep[S comparable](b *testing.B, p sim.Protocol[S], initial sim.Config[S], backend sim.Backend) {
	b.Helper()
	e, err := sim.NewEngineWith(p, daemon.NewSynchronous[S](), initial, 1, sim.Options{Backend: backend, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	start := e.GuardEvals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		progressed, err := e.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !progressed {
			b.Fatal("terminal configuration mid-benchmark")
		}
	}
	b.ReportMetric(float64(e.GuardEvals()-start)/float64(b.N), "guard-evals/step")
}

// BenchmarkStepBackendUnisonRing is the sd step comparison on the paper's
// substrate protocol: full-width steady state, every vertex fires NA each
// step.
func BenchmarkStepBackendUnisonRing(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		p, initial := ringUnison(b, n)
		b.Run(fmt.Sprintf("ring-%d/generic", n), func(b *testing.B) {
			benchStep[int](b, p, initial, sim.BackendGeneric)
		})
		b.Run(fmt.Sprintf("ring-%d/flat", n), func(b *testing.B) {
			benchStep[int](b, p, initial, sim.BackendFlat)
		})
	}
}

// BenchmarkStepBackendDijkstraRing65536 is the same comparison on
// Dijkstra's token ring from a random configuration (the ~n-step drain
// keeps roughly half the ring enabled for far longer than any realistic
// b.N).
func BenchmarkStepBackendDijkstraRing65536(b *testing.B) {
	const n = 65536
	p := dijkstra.MustNew(n, n)
	initial := sim.RandomConfig[int](p, rand.New(rand.NewSource(7)))
	b.Run("generic", func(b *testing.B) { benchStep[int](b, p, initial, sim.BackendGeneric) })
	b.Run("flat", func(b *testing.B) { benchStep[int](b, p, initial, sim.BackendFlat) })
}

// BenchmarkStepBackendCompositionRing4096 measures the zero-copy
// composition: the generic product materializes both component
// projections per guard (O(N) each, O(N²) per sd step), the flat product
// reads the shared packed array at component offsets. The 4096 size keeps
// the generic column affordable; E12c and BENCH_flat.json record the
// 65536 figures (~3000×).
func BenchmarkStepBackendCompositionRing4096(b *testing.B) {
	const n = 4096
	g := graph.Ring(n)
	uni, err := unison.New(g, unison.SafeParams(g))
	if err != nil {
		b.Fatal(err)
	}
	prod := compose.MustNew[int, int](uni, bfstree.MustNew(g, 0))
	initial := make(sim.Config[compose.Pair[int, int]], n)
	for v := range initial {
		initial[v] = compose.Pair[int, int]{First: 0, Second: v % 5}
	}
	b.Run("generic", func(b *testing.B) {
		benchStep[compose.Pair[int, int]](b, prod, initial, sim.BackendGeneric)
	})
	b.Run("flat", func(b *testing.B) {
		benchStep[compose.Pair[int, int]](b, prod, initial, sim.BackendFlat)
	})
}
