package netrun

// Cluster is the in-process multi-node harness: every node of the ring
// in one process, each with real TCP loopback transport and its own
// round-loop goroutine. The acceptance tests, examples/lockd and the
// lockd -selftest path run on it; production deployments run one Node
// per process via cmd/lockd instead. This file owns the per-node
// goroutines (speclint: goroutine-exempt; all clocks stay in
// transport.go/httpd.go).

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"specstab/internal/telemetry"
)

// ClusterConfig wires an in-process ring.
type ClusterConfig struct {
	// Spec is the ring-wide deployment description.
	Spec Spec
	// HTTP serves the client API on every node (loopback, dynamic ports).
	HTTP bool
	// Journals, when non-nil, holds one streaming sink per node (nil
	// entries allowed).
	Journals []io.Writer
	// Hub, when non-nil, receives every node's telemetry.
	Hub *telemetry.Hub
	// MaxRounds bounds every node's round loop (0 = run until drained).
	MaxRounds int64
	// IOTimeout, RecvRetries and Pace pass through to each node.
	IOTimeout   time.Duration
	RecvRetries int
	Pace        time.Duration
}

// Cluster is a running in-process ring.
type Cluster struct {
	nodes []*Node
	wg    sync.WaitGroup
	errs  []error // indexed by node, written before wg.Done
}

// StartCluster builds, binds, meshes and runs the ring. On return every
// node's round loop is live.
func StartCluster(cc ClusterConfig) (*Cluster, error) {
	spec, err := cc.Spec.normalized()
	if err != nil {
		return nil, err
	}
	c := &Cluster{nodes: make([]*Node, spec.Nodes), errs: make([]error, spec.Nodes)}
	for i := 0; i < spec.Nodes; i++ {
		cfg := Config{
			ID:          i,
			Spec:        spec,
			ListenPeer:  "127.0.0.1:0",
			IOTimeout:   cc.IOTimeout,
			RecvRetries: cc.RecvRetries,
			Pace:        cc.Pace,
			Hub:         cc.Hub,
		}
		if cc.HTTP {
			cfg.ListenClient = "127.0.0.1:0"
		}
		if i < len(cc.Journals) {
			cfg.Journal = cc.Journals[i]
		}
		nd, err := NewNode(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := nd.Start(); err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[i] = nd
	}
	addrs := make([]string, spec.Nodes)
	for i, nd := range c.nodes {
		addrs[i] = nd.PeerAddr()
	}
	// Mesh concurrently: Connect blocks on accepts, so a sequential pass
	// would deadlock inside one process.
	connErrs := make([]error, spec.Nodes)
	var meshWG sync.WaitGroup
	for i, nd := range c.nodes {
		nd.SetPeerAddrs(addrs)
		meshWG.Add(1)
		go func(i int, nd *Node) {
			defer meshWG.Done()
			connErrs[i] = nd.Connect()
		}(i, nd)
	}
	meshWG.Wait()
	if err := errors.Join(connErrs...); err != nil {
		c.Close()
		return nil, err
	}
	for i, nd := range c.nodes {
		c.wg.Add(1)
		go func(i int, nd *Node) {
			defer c.wg.Done()
			c.errs[i] = nd.Run(cc.MaxRounds)
		}(i, nd)
	}
	return c, nil
}

// Node returns member i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the ring size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// ClientAddrs lists every node's client API address (empty strings
// without HTTP).
func (c *Cluster) ClientAddrs() []string {
	addrs := make([]string, len(c.nodes))
	for i, nd := range c.nodes {
		addrs[i] = nd.ClientAddr()
	}
	return addrs
}

// DrainAll asks every node to drain; Wait then returns once the ring
// has shut down cleanly.
func (c *Cluster) DrainAll() {
	for _, nd := range c.nodes {
		nd.Drain()
	}
}

// Wait blocks until every round loop has returned and reports the first
// fault (nil for clean drains, byes and round budgets).
func (c *Cluster) Wait() error {
	c.wg.Wait()
	for i, err := range c.errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// Close tears everything down (idempotent; implied by a finished Wait
// except for the client servers and listeners).
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Close()
		}
	}
}
