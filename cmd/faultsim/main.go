// Command faultsim runs a transient-fault campaign against SSME: repeated
// bursts corrupting a chosen number of registers, each followed by
// autonomous re-stabilization, with per-burst recovery statistics.
//
// With -service the same campaign is routed through the grant adapter of
// internal/service via a declarative internal/scenario run: bursts hit a
// *running* mutual-exclusion service with clients queued at every vertex,
// and recovery is reported as clients observe it — grant-stream stall and
// latency degradation — next to the protocol-observed legitimacy re-entry.
//
// Examples:
//
//	faultsim -topology grid -n 20 -daemon sync -bursts 10 -corrupt 10
//	faultsim -n 16 -bursts 3 -service
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"specstab/internal/cli"
	"specstab/internal/core"
	"specstab/internal/faults"
	"specstab/internal/scenario"
	"specstab/internal/sim"
	"specstab/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: flags are parsed from args and the
// report written to out (the smoke tests drive it directly).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		topology   = fs.String("topology", "ring", "topology: "+cli.Topologies)
		n          = fs.Int("n", 12, "number of vertices")
		daemonName = fs.String("daemon", "sync", "daemon: "+cli.Daemons)
		prob       = fs.Float64("p", 0.5, "activation probability of the distributed daemon")
		bursts     = fs.Int("bursts", 5, "number of fault bursts")
		corrupt    = fs.Int("corrupt", 0, "registers corrupted per burst (0 = all)")
		quiet      = fs.Int("quiet", 8, "steps between bursts")
		svc        = fs.Bool("service", false, "route the campaign through the mutual-exclusion service layer and report client-observed recovery")
		common     = cli.AddCommon(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := common.Resolve(); err != nil {
		return err
	}
	if err := common.RejectTelemetry("faultsim"); err != nil {
		return err
	}
	seed := common.Seed

	g, err := cli.ParseTopology(*topology, *n, seed)
	if err != nil {
		return err
	}
	pAny, err := scenario.BuildProtocol(scenario.ProtocolSpec{Name: "ssme"}, g, *topology)
	if err != nil {
		return err
	}
	p := pAny.(*core.Protocol)
	k := *corrupt
	if k <= 0 || k > g.N() {
		k = g.N()
	}

	horizon := p.ServiceWindow()
	if *daemonName != "sync" && *daemonName != "sd" {
		horizon = p.UnfairBoundMoves()
	}

	if *svc {
		return runService(out, p, *topology, *daemonName, *prob, *bursts, k, *quiet, horizon, seed, common)
	}
	scenarioSpec := faults.Scenario[int]{
		Protocol: p,
		NewDaemon: func() sim.Daemon[int] {
			d, err := cli.ParseDaemon[int](*daemonName, g.N(), *prob)
			if err != nil {
				panic(err) // validated below before Run
			}
			return d
		},
		Legit:        p.Legitimate,
		Safe:         p.SafeME,
		HorizonSteps: horizon,
		Engine:       common.EngineSpec(),
	}
	if _, err := cli.ParseDaemon[int](*daemonName, g.N(), *prob); err != nil {
		return err
	}

	burstList := make([]faults.Burst, *bursts)
	for i := range burstList {
		burstList[i] = faults.Burst{AfterSteps: *quiet, CorruptVertices: k}
	}

	fmt.Fprintf(out, "fault campaign on %s under %s: %d bursts × %d corrupted registers\n\n",
		g, *daemonName, *bursts, k)
	initial := sim.RandomConfig[int](p, rand.New(rand.NewSource(seed)))
	recs, err := scenarioSpec.Run(initial, burstList, seed)
	if err != nil {
		return err
	}

	table := stats.NewTable("recoveries", "burst", "recovered", "steps", "moves", "safety violations pre-Γ₁", "closure")
	allOK := true
	for i, rec := range recs {
		okStr := "ok"
		if !rec.Recovered || rec.ViolationAfterLegit {
			okStr = "FAILED"
			allOK = false
		}
		table.AddRow(i+1, rec.Recovered, rec.StepsToLegit, rec.MovesToLegit, rec.SafetyViolations, okStr)
	}
	fmt.Fprintln(out, table)
	if allOK {
		fmt.Fprintln(out, "every burst was followed by autonomous re-stabilization — Theorem 1 as a contract")
	} else {
		fmt.Fprintln(out, "RECOVERY FAILURE — this refutes Theorem 1 and is a bug worth reporting")
	}
	return nil
}

// runService is the -service path: the same campaign, expressed as a
// declarative scenario against a running grant-adapted service with a
// client population at every vertex, scored in client-observed time.
func runService(out io.Writer, p *core.Protocol, topology, daemonName string, prob float64, bursts, corrupt, quiet, horizon int, seed int64, common *cli.Common) error {
	n := p.N()
	warm := p.ServiceWindow() + quiet
	sc := &scenario.Scenario{
		Name:     "faultsim-service",
		Seed:     seed,
		Protocol: scenario.ProtocolSpec{Name: "ssme"},
		Topology: scenario.TopologySpec{Name: topology, N: n},
		Daemon:   scenario.DaemonSpec{Name: daemonName, P: prob},
		Engine:   common.EngineSpec(),
		Workload: &scenario.WorkloadSpec{Kind: "closed", Clients: 2 * n, ThinkMin: 0, ThinkMax: 3},
		Storm: &scenario.StormSpec{
			Bursts:       bursts,
			Corrupt:      corrupt,
			WarmTicks:    warm,
			HorizonTicks: 4 * horizon,
			SettleTicks:  warm / 2,
		},
	}
	r, err := scenario.Build(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "service fault campaign on %s under %s: %d bursts × %d corrupted registers, %d clients\n\n",
		p.Graph(), r.DaemonName(), bursts, corrupt, 2*n)
	if err := r.Execute(); err != nil {
		return err
	}
	recs := r.Recoveries()
	table := stats.NewTable("client-observed recoveries",
		"burst", "resumed", "stall ticks", "legit ticks", "unsafe ticks",
		"pre grants/tick", "pre p95 lat", "post p95 lat", "closure")
	allOK := true
	for i, rec := range recs {
		okStr := "ok"
		if !rec.Resumed {
			okStr = "FAILED"
			allOK = false
		}
		legit := fmt.Sprintf("%d", rec.LegitTicks)
		if rec.LegitTicks < 0 {
			legit = "—"
		}
		table.AddRow(i+1, rec.Resumed, rec.StallTicks, legit, rec.UnsafeTicks,
			fmt.Sprintf("%.4f", rec.Pre.GrantsPerTick), rec.Pre.LatP95, rec.Post.LatP95, okStr)
	}
	fmt.Fprintln(out, table)
	fmt.Fprintln(out, "service totals")
	fmt.Fprintln(out, "==============")
	fmt.Fprint(out, r.Service().Totals().Render())
	if allOK {
		fmt.Fprintln(out, "\nevery burst stalled the grant stream only transiently — re-stabilization as clients observe it")
	} else {
		fmt.Fprintln(out, "\nGRANT STREAM DID NOT RESUME inside the horizon — investigate before trusting the service layer")
	}
	return nil
}
