package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time functions that read or wait on the
// wall clock. time.Duration arithmetic and constants stay legal — only
// observing real time is a determinism leak.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids wall-clock reads everywhere in the module except the
// explicitly allowlisted sites (Policy.WallclockExemptPkgs/Files).
// Deterministic code takes time as data: engine steps, service ticks and
// campaign grids advance logical clocks (internal/clock, service tick
// counters) driven by the scenario seed, never by the host scheduler. A
// new time.Now in a deterministic package must either be removed or claim
// an allowlist entry in internal/lint/policy.go — a loud, reviewed event.
var Wallclock = &Analyzer{
	Name:      "wallclock",
	Directive: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and friends outside the allowlist (experiment timing columns, " +
		"the real-time concurrent runtime): deterministic code takes time via logical clocks and " +
		"seeded schedules, not the host's",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if pass.Policy.WallclockExemptPkgs[pass.Pkg.Path] {
		return nil
	}
	for ident, obj := range pass.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
			continue
		}
		pos := pass.Pkg.Fset.Position(ident.Pos())
		if pass.Policy.WallclockExemptFiles[pass.Pkg.RelFile(pos)] {
			continue
		}
		pass.Reportf(ident.Pos(), "time.%s reads the wall clock in %s: deterministic code takes time as data (logical clocks, tick counters); allowlist the file in internal/lint/policy.go if timing is the payload",
			fn.Name(), pass.Pkg.Name)
	}
	return nil
}

// importsPackage reports whether file imports path.
func importsPackage(file *ast.File, path string) *ast.ImportSpec {
	for _, imp := range file.Imports {
		if imp.Path != nil && imp.Path.Value == `"`+path+`"` {
			return imp
		}
	}
	return nil
}
