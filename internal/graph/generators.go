package graph

import (
	"fmt"
	"math/rand"
)

// This file provides the topology generators used across the experiments.
// Dijkstra's protocol only runs on rings; SSME's selling point is that it
// runs on any connected topology, so the harness sweeps all of these.

// Ring returns the cycle C_n (n ≥ 3). Dijkstra's protocol and the paper's
// running comparisons live on rings; diam = ⌊n/2⌋, hole = cyclo = n.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring needs n ≥ 3, got %d", n))
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return MustNew(fmt.Sprintf("ring-%d", n), n, edges)
}

// Path returns the path P_n (n ≥ 1); diam = n−1, the extreme case for the
// ⌈diam/2⌉ bounds.
func Path(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return MustNew(fmt.Sprintf("path-%d", n), n, edges)
}

// Star returns the star K_{1,n−1} with center 0 (n ≥ 2); diam = 2.
func Star(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return MustNew(fmt.Sprintf("star-%d", n), n, edges)
}

// Complete returns K_n (n ≥ 1); diam = 1 for n ≥ 2, the smallest possible
// synchronous stabilization bound ⌈1/2⌉ = 1.
func Complete(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return MustNew(fmt.Sprintf("complete-%d", n), n, edges)
}

// Grid returns the rows×cols king-free mesh; diam = rows+cols−2.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: grid needs positive dimensions")
	}
	id := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return MustNew(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols, edges)
}

// Torus returns the rows×cols wrap-around mesh (rows, cols ≥ 3);
// diam = ⌊rows/2⌋+⌊cols/2⌋.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus needs dimensions ≥ 3")
	}
	id := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, [2]int{id(r, c), id(r, (c+1)%cols)})
			edges = append(edges, [2]int{id(r, c), id((r+1)%rows, c)})
		}
	}
	return MustNew(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols, edges)
}

// Hypercube returns the dim-dimensional boolean hypercube Q_dim (dim ≥ 1);
// n = 2^dim, diam = dim.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic("graph: hypercube dimension out of range [1,20]")
	}
	n := 1 << dim
	var edges [][2]int
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if v < u {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return MustNew(fmt.Sprintf("hypercube-%d", dim), n, edges)
}

// BinaryTree returns the complete binary tree with n vertices in heap order
// (vertex i has children 2i+1 and 2i+2).
func BinaryTree(n int) *Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{(i - 1) / 2, i})
	}
	return MustNew(fmt.Sprintf("bintree-%d", n), n, edges)
}

// Wheel returns the wheel W_n: a ring on vertices 1..n−1 plus hub 0
// adjacent to every ring vertex (n ≥ 4); diam = 2.
func Wheel(n int) *Graph {
	if n < 4 {
		panic("graph: wheel needs n ≥ 4")
	}
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
		next := i + 1
		if next == n {
			next = 1
		}
		edges = append(edges, [2]int{i, next})
	}
	return MustNew(fmt.Sprintf("wheel-%d", n), n, edges)
}

// Lollipop returns a clique of cliqueN vertices attached to a tail path of
// tailN vertices — a classic worst case mixing small and large distances.
func Lollipop(cliqueN, tailN int) *Graph {
	if cliqueN < 2 || tailN < 1 {
		panic("graph: lollipop needs cliqueN ≥ 2 and tailN ≥ 1")
	}
	n := cliqueN + tailN
	var edges [][2]int
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	for i := cliqueN - 1; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return MustNew(fmt.Sprintf("lollipop-%d+%d", cliqueN, tailN), n, edges)
}

// Petersen returns the Petersen graph (n=10, m=15, diam=2, girth 5).
func Petersen() *Graph {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // outer 5-cycle
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}, // inner pentagram
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}, // spokes
	}
	return MustNew("petersen", 10, edges)
}

// RandomTree returns a uniformly random labelled tree on n vertices
// (n ≥ 1), generated from a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n == 1 {
		return MustNew("randtree-1", 1, nil)
	}
	if n == 2 {
		return MustNew("randtree-2", 2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	var edges [][2]int
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				edges = append(edges, [2]int{u, v})
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	var last []int
	for u := 0; u < n; u++ {
		if degree[u] == 1 {
			last = append(last, u)
		}
	}
	edges = append(edges, [2]int{last[0], last[1]})
	return MustNew(fmt.Sprintf("randtree-%d", n), n, edges)
}

// RandomConnected returns a random connected graph on n vertices with
// extra additional edges beyond a random spanning tree (duplicates are
// re-drawn; extra is capped at the number of available non-tree slots).
func RandomConnected(n, extra int, rng *rand.Rand) *Graph {
	tree := RandomTree(n, rng)
	have := make(map[[2]int]bool, n-1+extra)
	edges := tree.Edges()
	for _, e := range edges {
		have[e] = true
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		key := [2]int{min(u, v), max(u, v)}
		if have[key] {
			continue
		}
		have[key] = true
		edges = append(edges, key)
		added++
	}
	return MustNew(fmt.Sprintf("randconn-%d+%d", n, extra), n, edges)
}
