// Multi-core scaling benchmarks of the persistent shard pool and the
// fused synchronous fast path (DESIGN.md §11): whole engine steps on the
// flat backend, sequential vs shard-parallel, on unison rings of 65536
// and 1048576 vertices in the full-width steady state. BENCH_parallel.json
// records a baseline run; E12d reports the same quantities from the
// experiment harness.
//
// The parallel sub-benchmarks use Workers:0 (the GOMAXPROCS default), so
// the worker count follows the -cpu flag — the CI smoke step runs
//
//	go test -bench BenchmarkParallel -benchtime 1x -run '^$' -cpu 1,2,4 .
//
// and a scaling curve on a real multi-core host comes from
//
//	go test -bench=Parallel -cpu 1,2,4,8 .
package specstab_test

import (
	"fmt"
	"runtime"
	"testing"

	"specstab/internal/daemon"
	"specstab/internal/sim"
)

// machineString is the canonical "machine" field of every BENCH_*.json:
// core count and GOMAXPROCS are part of the record because parallel
// figures are meaningless without them. Regenerate a baseline file with
// the string this prints (BenchmarkParallel logs it).
func machineString() string {
	return fmt.Sprintf("%d core(s), GOMAXPROCS=%d, %s/%s, %s",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH, runtime.Version())
}

// benchParallelStep drives one flat-backend sd engine step per iteration
// and reports moves/sec (the cross-backend throughput currency: one move
// is one fired rule, n per step in the steady state).
func benchParallelStep(b *testing.B, n, workers int) {
	p, initial := ringUnison(b, n)
	e, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initial, 1,
		sim.Options{Backend: sim.BackendFlat, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	startMoves := e.Moves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		progressed, err := e.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !progressed {
			b.Fatal("terminal configuration mid-benchmark")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(e.Moves()-startMoves)/secs, "moves/s")
	}
}

// BenchmarkParallelStepUnisonRing is the scaling curve: sequential
// (workers-1) vs pool-parallel (workers-max, i.e. GOMAXPROCS via -cpu) on
// the paper's substrate protocol at full firing width.
func BenchmarkParallelStepUnisonRing(b *testing.B) {
	b.Logf("machine: %s", machineString())
	for _, n := range []int{65536, 1048576} {
		b.Run(fmt.Sprintf("ring-%d/workers-1", n), func(b *testing.B) {
			benchParallelStep(b, n, 1)
		})
		b.Run(fmt.Sprintf("ring-%d/workers-max", n), func(b *testing.B) {
			benchParallelStep(b, n, 0)
		})
	}
}

// TestParallelBenchmarkInvariance pins the benchmark workload's meaning:
// the sequential and pool-parallel engines the benchmarks time replay the
// identical execution (same fingerprint, steps and moves), so the moves/s
// columns compare equal work.
func TestParallelBenchmarkInvariance(t *testing.T) {
	t.Parallel()
	const n, steps = 65536, 10
	p, initialSeq := ringUnison(t, n)
	ref, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initialSeq, 1,
		sim.Options{Backend: sim.BackendFlat, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if _, err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []int{0, 2, 4} {
		e, err := sim.NewEngineWith(p, daemon.NewSynchronous[int](), initialSeq, 1,
			sim.Options{Backend: sim.BackendFlat, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := sim.FingerprintConfig(e.Current()), sim.FingerprintConfig(ref.Current()); got != want {
			t.Fatalf("workers=%d: fingerprint %016x, want %016x", w, got, want)
		}
		if e.Moves() != ref.Moves() {
			t.Fatalf("workers=%d: moves %d, want %d", w, e.Moves(), ref.Moves())
		}
		e.Close()
	}
}
