package experiments

import (
	"specstab/internal/sim"
)

// runOutcome is the per-execution measurement shared by the experiments:
// convergence is scored by the last safety violation, legitimacy entry by
// first membership in the protocol's legitimacy set, and closure by the
// absence of violations from that point on. Unlike sim.MeasureConvergence,
// the run stops a fixed tail after legitimacy instead of exhausting the
// horizon — closure (verified exhaustively by internal/check and
// guaranteed by Theorem 1) makes the tail a confirmation, not a search.
type runOutcome struct {
	legitReached bool
	legitSteps   int
	legitMoves   int
	convSteps    int
	convMoves    int
	closureOK    bool
}

// measureRun drives e until the legitimacy predicate holds (at most
// horizon steps), then tail further steps, scoring safety throughout.
func measureRun[S comparable](
	e *sim.Engine[S],
	horizon, tail int,
	safe, legit func(sim.Config[S]) bool,
) (runOutcome, error) {
	out := runOutcome{closureOK: true}
	lastViolation := -1
	legitAt := -1

	inspect := func(step int) {
		c := e.Current()
		if legitAt < 0 && legit(c) {
			legitAt = step
			out.legitReached = true
			out.legitSteps = step
			out.legitMoves = e.Moves()
		}
		if !safe(c) {
			lastViolation = step
			out.convMoves = e.Moves()
			if legitAt >= 0 {
				out.closureOK = false
			}
		}
	}

	inspect(0)
	step := 0
	for {
		if legitAt >= 0 {
			if step >= legitAt+tail {
				break
			}
		} else if step >= horizon {
			break
		}
		progressed, err := e.Step()
		if err != nil {
			return out, err
		}
		if !progressed {
			break
		}
		step++
		inspect(step)
	}
	out.convSteps = lastViolation + 1
	return out, nil
}
