// Example scenariorun: the declarative run layer end to end. One Scenario
// value names the whole evaluation cell — protocol, topology, daemon,
// initial configuration, stop condition, observers — and the scenario
// layer builds and executes it; swapping any axis is a data change. The
// same value round-trips through JSON (see examples/scenarios/*.json and
// `locksim -scenario`), so variant studies are files, not code.
package main

import (
	"fmt"
	"log"
	"os"

	"specstab/internal/scenario"
)

func main() {
	sc := &scenario.Scenario{
		Name:     "walkthrough",
		Seed:     11,
		Protocol: scenario.ProtocolSpec{Name: "ssme"},
		Topology: scenario.TopologySpec{Name: "torus", N: 16},
		Daemon:   scenario.DaemonSpec{Name: "distributed", P: 0.5},
		Init:     scenario.InitSpec{Mode: "random"},
		Stop:     scenario.StopSpec{Steps: 400},
		Observers: []scenario.ObserverSpec{
			{Name: "convergence"},
			{Name: "guards"},
			{Name: "speculation"},
		},
	}

	// The scenario is a value: print it as the JSON any driver can rerun.
	fmt.Println("-- the scenario as a shareable file --")
	if err := sc.Encode(os.Stdout); err != nil {
		log.Fatal(err)
	}

	run, err := scenario.Build(sc)
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Execute(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- the standard report (observers compose) --")
	if err := run.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Typed access stays available for bespoke analysis: the convergence
	// observer exposes the same RunReport the measurement API returns.
	rep := run.Observer("convergence").(*scenario.Convergence).RunReport()
	fmt.Printf("\nobserved stabilization: %d steps (Γ₁ at step %d)\n",
		rep.ConvergenceSteps, rep.FirstLegitStep)
}
