package bfstree

// Flat execution codec (sim.Flat, DESIGN.md §6): one int64 word per
// vertex holding the level d_v, min-over-neighbors computed over the
// graph's CSR rows.

import "specstab/internal/sim"

// minNeighborFlat is minNeighbor over the packed configuration; the
// unit-stride layout the engine uses skips the stride arithmetic.
func (p *Protocol) minNeighborFlat(st []int64, stride, base, v int) int64 {
	csr := p.g.CSR()
	off, tgt := csr.Offsets, csr.Targets
	if stride == 1 && base == 0 {
		m := st[tgt[off[v]]]
		for j := off[v] + 1; j < off[v+1]; j++ {
			if x := st[tgt[j]]; x < m {
				m = x
			}
		}
		return m
	}
	m := st[int(tgt[off[v]])*stride+base]
	for j := off[v] + 1; j < off[v+1]; j++ {
		if x := st[int(tgt[j])*stride+base]; x < m {
			m = x
		}
	}
	return m
}

// EnabledRuleFlat implements sim.Flat with the root and min+1 guards.
func (p *Protocol) EnabledRuleFlat(st []int64, stride, base int, vs []int, rules []sim.Rule) {
	for i, v := range vs {
		if v == p.root {
			if st[v*stride+base] != 0 {
				rules[i] = RuleRoot
			} else {
				rules[i] = sim.NoRule
			}
			continue
		}
		if st[v*stride+base] != p.minNeighborFlat(st, stride, base, v)+1 {
			rules[i] = RuleMinPlusOne
		} else {
			rules[i] = sim.NoRule
		}
	}
}

// ApplyFlat implements sim.Flat: the root pins 0, everyone else repairs
// to min neighbor + 1.
func (p *Protocol) ApplyFlat(st []int64, stride, base int, vs []int, rules []sim.Rule, out []int64, outStride, outBase int) {
	for i, v := range vs {
		switch rules[i] {
		case RuleRoot:
			out[i*outStride+outBase] = 0
		case RuleMinPlusOne:
			out[i*outStride+outBase] = p.minNeighborFlat(st, stride, base, v) + 1
		default:
			panic("bfstree: flat apply of unknown rule")
		}
	}
}

var _ sim.Flat[int] = (*Protocol)(nil)

// MaxRule implements sim.RuleBounded: rules are root and min+1.
func (p *Protocol) MaxRule() sim.Rule { return RuleMinPlusOne }

var _ sim.RuleBounded = (*Protocol)(nil)
