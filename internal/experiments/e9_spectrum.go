package experiments

import (
	"specstab/internal/campaign"
	"specstab/internal/core"
	"specstab/internal/daemon"
	"specstab/internal/graph"
	"specstab/internal/sim"
	"specstab/internal/speculation"
	"specstab/internal/stats"
)

// E9DaemonSpectrum implements the conclusion's first perspective —
// "provide speculative protocols for other adversaries than the
// synchronous one" — using the paper's own multi-daemon form of
// Definition 4: SSME is measured under a spectrum of daemons at once
// (greedy-unfair, round-robin central, distributed-p, synchronous) on a
// ring sweep, in all three time units.
//
// Two shapes emerge and are asserted:
//
//   - rounds to Γ₁ are essentially daemon-invariant (Θ(n) on rings: the
//     unison round complexity) — no speculation gap exists in rounds;
//   - steps to Γ₁ separate: Θ(n) under sd and under distributed-p, but
//     Θ(n²) under central schedules (one move per step) — so SSME is
//     (ud; dd, sd)-speculatively stabilizing in the step measure, while
//     cd buys nothing. The adversary hierarchy matters measure by measure.
//
// The grid is ring size × daemon; all trials of a size share the same
// initial configurations (drawn once at expansion), so the daemons face
// the identical fault aftermath.
func E9DaemonSpectrum(cfg RunConfig) ([]*stats.Table, error) {
	sizes := []int{8, 12, 16}
	if !cfg.Quick {
		sizes = []int{8, 12, 16, 24, 32}
	}
	trials := cfg.pick(3, 8)

	table := stats.NewTable(
		"E9 — daemon spectrum for SSME on rings (worst over trials, to Γ₁)",
		"n", "daemon", "steps", "moves", "rounds",
	)

	type curveKey int
	const (
		kGreedy curveKey = iota
		kRR
		kDD
		kSD
	)
	curves := map[curveKey][]speculation.CurvePoint{}

	type cell struct {
		n        int
		p        *core.Protocol
		key      curveKey
		mk       func() sim.Daemon[int]
		name     string
		initials []sim.Config[int]
	}
	var cells []cell
	for _, n := range sizes {
		g := graph.Ring(n)
		p, err := core.New(g)
		if err != nil {
			return nil, err
		}
		rng := cfg.rng(int64(17 * n))
		initials := make([]sim.Config[int], trials)
		for i := range initials {
			initials[i] = sim.RandomConfig[int](p, rng)
		}
		daemons := []struct {
			key curveKey
			mk  func() sim.Daemon[int]
		}{
			{kGreedy, func() sim.Daemon[int] { return daemon.NewGreedyCentral[int](p, p.DisorderPotential) }},
			{kRR, func() sim.Daemon[int] { return daemon.NewRoundRobin[int](n) }},
			{kDD, func() sim.Daemon[int] { return daemon.NewDistributed[int](0.5) }},
			{kSD, func() sim.Daemon[int] { return daemon.NewSynchronous[int]() }},
		}
		for _, d := range daemons {
			cells = append(cells, cell{n: n, p: p, key: d.key, mk: d.mk, name: d.mk().Name(), initials: initials})
		}
	}

	type spectrumOutcome struct {
		legit                bool
		steps, moves, rounds int
	}
	err := campaign.Sweep(cfg.pool(), cells,
		func(cell) int { return trials },
		func(c cell, t int) (spectrumOutcome, error) {
			e, err := newEngine[int](cfg, c.p, c.mk(), c.initials[t], int64(t+1))
			if err != nil {
				return spectrumOutcome{}, err
			}
			if _, err := e.Run(c.p.UnfairBoundMoves(), c.p.Legitimate); err != nil {
				return spectrumOutcome{}, err
			}
			return spectrumOutcome{
				legit:  c.p.Legitimate(e.Current()),
				steps:  e.Steps(),
				moves:  e.Moves(),
				rounds: e.Rounds(),
			}, nil
		},
		func(c cell, outs []spectrumOutcome) error {
			worstSteps, worstMoves, worstRounds := 0, 0, 0
			for _, out := range outs {
				if !out.legit {
					table.AddNote("n=%d under %s: Γ₁ not reached — VIOLATED", c.n, c.name)
					continue
				}
				worstSteps = maxInt(worstSteps, out.steps)
				worstMoves = maxInt(worstMoves, out.moves)
				worstRounds = maxInt(worstRounds, out.rounds)
			}
			table.AddRow(c.n, c.name, worstSteps, worstMoves, worstRounds)
			curves[c.key] = append(curves[c.key], speculation.CurvePoint{Size: c.n, Conv: float64(worstSteps)})
			return nil
		})
	if err != nil {
		return nil, err
	}

	claim := speculation.MultiClaim{
		Protocol:       "SSME (ring, steps to Γ₁)",
		Strong:         speculation.UnfairDistributed,
		StrongExponent: 2,
		Weak: []speculation.WeakClaim{
			{Daemon: speculation.Distributed, Exponent: 1},
			{Daemon: speculation.Synchronous, Exponent: 1},
		},
	}
	cert, err := speculation.MeasureMulti(claim, curves[kGreedy], curves[kDD], curves[kSD])
	if err != nil {
		return nil, err
	}
	summary := stats.NewTable(
		"E9 — multi-daemon certificate (Definition 4, extended form)",
		"curve", "measured exponent", "R²", "claimed",
	)
	summary.AddRow(claim.Strong.String()+" (greedy central proxy)", cert.StrongFit.Exponent, cert.StrongFit.R2, claim.StrongExponent)
	for i, w := range claim.Weak {
		summary.AddRow(w.Daemon.String(), cert.WeakFits[i].Exponent, cert.WeakFits[i].R2, w.Exponent)
	}
	summary.AddRow("separated (all weak gaps hold)", ok(cert.SeparatedAll(0.6)), "", "")
	summary.AddNote("rounds to Γ₁ stay Θ(n) under every daemon — the speculation gap lives in the step measure")
	return []*stats.Table{table, summary}, nil
}
