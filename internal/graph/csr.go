package graph

// Compressed-sparse-row adjacency. The flat execution backend
// (internal/sim, DESIGN.md §6) evaluates guards over packed []int64 state
// vectors; iterating [][]int adjacency there costs a pointer chase and a
// bounds check per neighbor list. A CSR view stores every neighbor list
// back to back in one []int32 with an offset table, so batch guard kernels
// walk contiguous memory with nothing but integer arithmetic.

import "sync"

// CSR is a compressed-sparse-row adjacency view: the neighbors of vertex v
// are Targets[Offsets[v]:Offsets[v+1]]. Rows keep the order of the lists
// they were built from (sorted, for Graph adjacency). A CSR is immutable
// after construction and safe for concurrent readers; vertex ids are int32
// (the substrate targets systems up to a few million vertices).
type CSR struct {
	// Offsets has length N()+1; row v spans Offsets[v]..Offsets[v+1].
	Offsets []int32
	// Targets concatenates all rows.
	Targets []int32
}

// BuildCSR flattens the neighbor lists given by row (called once per
// vertex, in order) into a CSR.
func BuildCSR(n int, row func(v int) []int) *CSR {
	c := &CSR{Offsets: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		total += len(row(v))
	}
	c.Targets = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		for _, u := range row(v) {
			c.Targets = append(c.Targets, int32(u))
		}
		c.Offsets[v+1] = int32(len(c.Targets))
	}
	return c
}

// N returns the number of vertices of the view.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// Degree returns the length of row v.
func (c *CSR) Degree(v int) int { return int(c.Offsets[v+1] - c.Offsets[v]) }

// Row returns the neighbor row of v, sharing the underlying storage.
func (c *CSR) Row(v int) []int32 { return c.Targets[c.Offsets[v]:c.Offsets[v+1]] }

// csrCache memoizes Graph.CSR; a Graph is logically immutable, so the view
// is built once on first use, thread-safely (same discipline as the metric
// caches of metrics.go).
type csrCache struct {
	once sync.Once
	csr  *CSR
}

// CSR returns the graph's adjacency as a compressed-sparse-row view,
// built once and shared by all callers (read-only).
func (g *Graph) CSR() *CSR {
	g.csrc.once.Do(func() {
		g.csrc.csr = BuildCSR(g.N(), g.Neighbors)
	})
	return g.csrc.csr
}
