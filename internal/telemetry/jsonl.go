package telemetry

// The JSONL event sink: one JSON object per line, fields in a fixed
// order, suitable for tailing during soaks. Events arrive tick-stamped in
// logical time; the wall stamp is added here, at the sink boundary — the
// package's single wall-clock site, allowlisted in
// internal/lint/policy.go (WallclockExemptFiles). Logical content is
// byte-deterministic; only the "wall" field varies between runs.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONLSink streams events to w as JSON lines.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // injected by tests for a stable wall stamp
}

// NewJSONL returns a sink writing one JSON object per event to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, now: time.Now}
}

// Event implements EventSink: {"wall":...,"tick":...,"kind":...,fields...}.
// Fields render in their declared order (no map iteration anywhere), so
// two runs differ at most in the wall stamps.
func (s *JSONLSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"wall":`...)
	buf = appendJSON(buf, s.now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"tick":`...)
	buf = appendJSON(buf, e.Tick)
	buf = append(buf, `,"kind":`...)
	buf = appendJSON(buf, e.Kind)
	for _, f := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSON(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSON(buf, f.Value)
	}
	buf = append(buf, '}', '\n')
	s.w.Write(buf)
}

// appendJSON marshals v onto buf (errors render as null — event payloads
// are plain scalars, so this is unreachable in practice).
func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return append(buf, "null"...)
	}
	return append(buf, b...)
}
