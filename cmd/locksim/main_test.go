package main

// Smoke tests: flag parsing, one service run per protocol, and a storm.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunClosedLoopSSME(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "ssme", "-n", "8", "-ticks", "400"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"lock service", "SSME@ring-8", "service totals", "grants/tick", "jain"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRunOpenLoopDijkstra(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "dijkstra", "-n", "8", "-workload", "open", "-rate", "0.4", "-ticks", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dijkstra-kstate") {
		t.Fatalf("report missing protocol name:\n%s", out.String())
	}
}

func TestRunStormLExclusion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "lexclusion", "-n", "8", "-l", "2", "-bursts", "1", "-ticks", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fault storm", "stall ticks", "legit ticks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("storm report missing %q:\n%s", want, s)
		}
	}
}

func TestRunBackendsAgree(t *testing.T) {
	drive := func(backend string) string {
		var out bytes.Buffer
		if err := run([]string{"-protocol", "ssme", "-n", "9", "-daemon", "distributed",
			"-ticks", "300", "-backend", backend}, &out); err != nil {
			t.Fatal(err)
		}
		// Strip the header line, which names the backend.
		_, rest, _ := strings.Cut(out.String(), "\n")
		return rest
	}
	if drive("generic") != drive("flat") {
		t.Fatal("service reports diverge between generic and flat backends")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-protocol", "nonsense"},
		{"-protocol", "dijkstra", "-topology", "grid"},
		{"-workload", "nonsense"},
		{"-daemon", "nonsense"},
		{"-backend", "nonsense"},
		{"-bogus"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("want error for %v", args)
		}
	}
}

func TestRunScenarioFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "../../examples/scenarios/ssme-storm.json"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The checked-in storm scenario attaches three observers; all of their
	// reports must appear in one run.
	for _, want := range []string{"ssme-storm", "fault storm", "service totals", "convergence", "guards"} {
		if !strings.Contains(s, want) {
			t.Fatalf("scenario report missing %q:\n%s", want, s)
		}
	}
}

func TestRunScenarioFileOverrides(t *testing.T) {
	drive := func(extra ...string) string {
		var out bytes.Buffer
		args := append([]string{"-scenario", "../../examples/scenarios/ssme-storm.json"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	// -backend/-workers override the file without changing the execution.
	if drive("-backend", "generic", "-workers", "1") != drive("-backend", "flat", "-workers", "8") {
		t.Fatal("scenario report diverges between backend/worker overrides")
	}
	// -seed overrides the file's seed and must change the execution.
	if drive() == drive("-seed", "99") {
		t.Fatal("seed override had no effect")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocols:", "observers:", "ssme", "steplog"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q", want)
		}
	}
}

func TestRunScenarioFileRejectsShapingFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scenario", "../../examples/scenarios/ssme-storm.json", "-n", "64"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-n cannot be combined") {
		t.Fatalf("want a conflict error naming -n, got %v", err)
	}
}

func TestRunCampaign(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-campaign", "stall-curve"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stallTicks") {
		t.Fatalf("campaign table missing metric column:\n%s", out.String())
	}
}

func TestRunCampaignRejectsShapingFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-campaign", "stall-curve", "-n", "32"}, &out)
	if err == nil || !strings.Contains(err.Error(), "cannot be combined with -campaign") {
		t.Fatalf("err = %v, want the shaping-flag rejection", err)
	}
	var out2 bytes.Buffer
	if err := run([]string{"-checkpoint", "x.journal"}, &out2); err == nil {
		t.Fatal("-checkpoint without -campaign accepted")
	}
}
