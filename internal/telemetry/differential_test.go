package telemetry_test

// The determinism differential: the same scenario executed with telemetry
// attached (hub + engine/service pumps + JSONL sink) and absent must
// fingerprint bitwise identically, across backends and worker counts —
// the contract that lets -telemetry be flipped on any production run
// without changing what the run computes (DESIGN.md §12). This lives in
// an external test package so it can drive internal/scenario (which
// imports telemetry) without a cycle.

import (
	"io"
	"strings"
	"testing"

	"specstab/internal/scenario"
	"specstab/internal/telemetry"
)

// stormScenario is a full-depth run: lock service under a fault storm,
// exercising the engine pump, the service pump (cheap and heavy strides)
// and the storm recovery publisher.
func stormScenario(backend string, workers int) *scenario.Scenario {
	return &scenario.Scenario{
		Name:     "telemetry-differential",
		Seed:     7,
		Protocol: scenario.ProtocolSpec{Name: "ssme"},
		Topology: scenario.TopologySpec{Name: "ring", N: 24},
		Engine:   scenario.EngineSpec{Backend: backend, Workers: workers},
		Workload: &scenario.WorkloadSpec{Kind: "closed", Clients: 48, ThinkMax: 3},
		Storm:    &scenario.StormSpec{Bursts: 2, Corrupt: 12},
		Stop:     scenario.StopSpec{Ticks: 600},
	}
}

// execute builds and runs sc, returning the terminal protocol and service
// fingerprints. With hub set, the telemetry observer is attached to it and
// a JSONL sink drains the event stream into io.Discard (so emission cost
// is exercised, not skipped).
func execute(t *testing.T, sc *scenario.Scenario, hub *telemetry.Hub) (uint64, uint64) {
	t.Helper()
	if hub != nil {
		hub.AddSink(telemetry.NewJSONL(io.Discard))
		sc.Telemetry = hub
		sc.Observers = append(sc.Observers, scenario.ObserverSpec{Name: "telemetry", Every: 16})
	}
	r, err := scenario.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	return r.Probes().Fingerprint(), r.Service().Fingerprint()
}

func TestTelemetryDoesNotPerturbExecutions(t *testing.T) {
	baseProto, baseSvc := execute(t, stormScenario("generic", 1), nil)
	for _, backend := range []string{"generic", "flat"} {
		for _, workers := range []int{1, 8} {
			for _, on := range []bool{false, true} {
				var hub *telemetry.Hub
				if on {
					hub = telemetry.New()
				}
				proto, svc := execute(t, stormScenario(backend, workers), hub)
				if proto != baseProto || svc != baseSvc {
					t.Errorf("backend=%s workers=%d telemetry=%v: fingerprints (%#x, %#x) diverge from baseline (%#x, %#x)",
						backend, workers, on, proto, svc, baseProto, baseSvc)
				}
				if on {
					snap := hub.Gather()
					if len(snap.Series) == 0 || snap.Events == 0 {
						t.Errorf("backend=%s workers=%d: telemetry hub stayed empty (%d series, %d events)",
							backend, workers, len(snap.Series), snap.Events)
					}
				}
			}
		}
	}
}

// TestTelemetrySeriesDeterministic pins the stronger property the hub's
// design gives for free: not just that telemetry never perturbs the run,
// but that the collected series themselves are identical across backends
// and worker counts (wall time never enters the hub).
func TestTelemetrySeriesDeterministic(t *testing.T) {
	render := func(backend string, workers int) string {
		hub := telemetry.New()
		execute(t, stormScenario(backend, workers), hub)
		var b strings.Builder
		if err := hub.Gather().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := render("generic", 1)
	for _, backend := range []string{"generic", "flat"} {
		for _, workers := range []int{1, 8} {
			if got := render(backend, workers); got != base {
				t.Errorf("backend=%s workers=%d: series diverge from generic/1:\n--- got ---\n%s--- want ---\n%s",
					backend, workers, got, base)
			}
		}
	}
}

// TestDetachedHubObserver covers the driver-less path: a scenario naming
// the telemetry observer without an injected hub runs against a detached
// hub reachable through the observer.
func TestDetachedHubObserver(t *testing.T) {
	sc := stormScenario("auto", 0)
	sc.Observers = []scenario.ObserverSpec{{Name: "telemetry"}}
	r, err := scenario.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	obs, ok := r.Observer("telemetry").(*scenario.Telemetry)
	if !ok {
		t.Fatalf("observer %T, want *scenario.Telemetry", r.Observer("telemetry"))
	}
	snap := obs.Hub().Gather()
	for _, name := range []string{
		"specstab_engine_steps_total",
		"specstab_service_grants_total",
		"specstab_storm_bursts_total",
	} {
		found := false
		for _, m := range snap.Series {
			if m.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("detached hub missing series %s", name)
		}
	}
	var rep strings.Builder
	if err := r.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "telemetry") {
		t.Errorf("run report missing the telemetry observer line:\n%s", rep.String())
	}
}
