package lint

import (
	"go/ast"
	"go/types"
)

// DetMap flags `range` over a map in deterministic packages. Go randomizes
// map iteration order per run, so any map range whose effect depends on
// visit order breaks the bitwise-reproducibility contract of DESIGN.md §7
// — exactly the class of bug the differential tests can only catch after
// the fact. Sort the keys first, keep the set slice-backed, or — when the
// body is genuinely order-insensitive (pure reduction into an
// order-independent accumulator, independent per-key writes) — annotate:
//
//	//speclint:ordered -- <why the result does not depend on visit order>
var DetMap = &Analyzer{
	Name:      "detmap",
	Directive: "ordered",
	Doc: "flag range-over-map in deterministic packages: iteration order is randomized per run, " +
		"so unsorted map ranges are a determinism hazard; sort keys, use a slice-backed set, or " +
		"annotate order-insensitive reductions with //speclint:ordered -- <justification>",
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	if !pass.Policy.Deterministic[pass.Pkg.Path] {
		return nil
	}
	pass.inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(rs.For, "range over map %s in deterministic package %s: iteration order is randomized; sort the keys, use a slice-backed set, or annotate //speclint:ordered -- <why>",
				types.TypeString(t, types.RelativeTo(pass.Pkg.Types)), pass.Pkg.Name)
		}
		return true
	})
	return nil
}
