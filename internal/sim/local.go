package sim

import "sort"

// Local is an optional capability of a Protocol: a declaration of the
// guard's read-set. Neighbors(v) must list every vertex u ≠ v whose state
// the guard of v reads — the read-set closure of EnabledRule(·, v). For the
// neighbor-reading protocols of this repository that is exactly the
// communication graph's adjacency; for directed read patterns (Dijkstra's
// ring, where v reads only its predecessor) it is the strict read-set,
// which may be asymmetric.
//
// The contract is what makes incremental enabled-set maintenance sound: in
// Dijkstra's atomic-state model a step changes only the states of the
// activated vertices, so the only vertices whose enabledness can change are
// the activated ones and the vertices that read them. An engine given a
// Local protocol re-evaluates guards only on that closed neighborhood (see
// Engine and DESIGN.md §6); a Neighbors that under-reports its read-set
// silently corrupts executions, so it must err on the side of inclusion.
//
// Neighbors may return a shared slice; callers must not mutate it. The
// returned ids need not be sorted (the engine sorts what it derives).
type Local interface {
	Neighbors(v int) []int
}

// NeighborLists is a Local backed by explicit adjacency lists — the
// building block for wrappers (compositions, products) that derive their
// read-sets from their components.
type NeighborLists [][]int

// Neighbors implements Local.
func (l NeighborLists) Neighbors(v int) []int { return l[v] }

// localProvider is the optional hook for wrapper protocols whose locality
// is conditional on their components (e.g. compose.Product): when
// implemented it takes precedence over a direct Local implementation, and
// returning ok=false opts out of locality entirely.
type localProvider interface {
	Local() (Local, bool)
}

// LocalOf returns p's locality declaration, or nil when p does not declare
// one (the engine then falls back to full guard rescans).
func LocalOf[S comparable](p Protocol[S]) Local {
	if lp, ok := any(p).(localProvider); ok {
		l, declared := lp.Local()
		if !declared {
			return nil
		}
		return l
	}
	if l, ok := any(p).(Local); ok {
		return l
	}
	return nil
}

// influenceSets inverts the read-set relation of l: out[v] lists, in
// increasing order and without duplicates, the vertices whose enabledness
// may change when v's state changes — v itself plus every u with
// v ∈ l.Neighbors(u).
func influenceSets(n int, l Local) [][]int {
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		out[v] = append(out[v], v)
	}
	for u := 0; u < n; u++ {
		for _, v := range l.Neighbors(u) {
			if v != u {
				out[v] = append(out[v], u)
			}
		}
	}
	for v := range out {
		sort.Ints(out[v])
		out[v] = dedupSorted(out[v])
	}
	return out
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(xs []int) []int {
	w := 0
	for i, x := range xs {
		if i == 0 || x != xs[w-1] {
			xs[w] = x
			w++
		}
	}
	return xs[:w]
}
