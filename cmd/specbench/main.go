// Command specbench regenerates the paper's "evaluation": every experiment
// of DESIGN.md §4 (E1–E13), printed as plain-text tables or CSV. Each row
// of each table is a scenario-resolved run: the harness constructs all of
// its engines through internal/scenario's backend chokepoint, so the
// -backend/-workers knobs mean exactly what they mean everywhere else.
//
// Usage:
//
//	specbench [-experiment e3] [-quick] [-seed 42] [-csv] [-workers 8] [-backend flat]
//
// Without -experiment the full suite runs in order. Independent trials run
// on a worker pool (-workers, default GOMAXPROCS); tables are bitwise
// identical for every worker count. -backend selects the engine execution
// backend (auto, generic, flat — DESIGN.md §6); executions, and hence all
// non-timing columns, are identical for every choice. EXPERIMENTS.md
// records a quick run next to the paper's claims.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"specstab/internal/cli"
	"specstab/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specbench:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: flags are parsed from args and the
// tables written to out (the smoke tests drive it directly).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specbench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		expID  = fs.String("experiment", "", "experiment id (e1..e13); empty runs all")
		quick  = fs.Bool("quick", false, "reduced sizes and trial counts")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		common = cli.AddCommon(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := common.Resolve(); err != nil {
		return err
	}

	cfg := experiments.RunConfig{Quick: *quick, Seed: common.Seed, Workers: common.Workers, Backend: common.Backend}
	list := experiments.Registry()
	if *expID != "" {
		exp, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		list = []experiments.Experiment{exp}
	}

	for _, exp := range list {
		fmt.Fprintf(out, "### %s — %s\n\n", exp.ID, exp.Title)
		tables, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintln(out, t.CSV())
			} else {
				fmt.Fprintln(out, t.String())
			}
		}
	}
	return nil
}
