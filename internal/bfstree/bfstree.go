// Package bfstree implements the self-stabilizing "min+1" breadth-first
// spanning-tree protocol of Huang and Chen (IPL 1992), the second entry of
// the paper's Section 3 catalogue: it is (ud, sd, n², diam)-speculatively
// stabilizing — Θ(n²) steps under the unfair distributed daemon but
// Θ(diam(g)) steps under the synchronous one.
//
// Each vertex maintains a level d_v; the designated root pins d_root = 0
// and every other vertex repairs d_v to min{d_u : u ∈ neig(v)} + 1. The
// protocol is silent: it stabilizes exactly when no rule is enabled, which
// happens precisely when every level equals the true BFS distance from the
// root.
package bfstree

import (
	"fmt"
	"math/rand"

	"specstab/internal/graph"
	"specstab/internal/sim"
)

// Rule identifiers.
const (
	// RuleRoot pins the root's level to 0.
	RuleRoot sim.Rule = iota + 1
	// RuleMinPlusOne repairs a non-root level to min neighbor + 1.
	RuleMinPlusOne
)

// Protocol is the min+1 BFS protocol rooted at Root. Its state type is
// int: the level d_v (arbitrary non-negative values after a fault).
type Protocol struct {
	sim.IntWord // packing half of the flat codec (see flat.go)

	g    *graph.Graph
	root int
}

// New builds the protocol on g rooted at root.
func New(g *graph.Graph, root int) (*Protocol, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("bfstree: root %d out of range [0,%d)", root, g.N())
	}
	return &Protocol{g: g, root: root}, nil
}

// MustNew is New that panics on error.
func MustNew(g *graph.Graph, root int) *Protocol {
	p, err := New(g, root)
	if err != nil {
		panic(err)
	}
	return p
}

// Graph returns the communication graph.
func (p *Protocol) Graph() *graph.Graph { return p.g }

// Root returns the designated root vertex.
func (p *Protocol) Root() int { return p.root }

// Name implements sim.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("bfs-min+1[root=%d]@%s", p.root, p.g.Name())
}

// N implements sim.Protocol.
func (p *Protocol) N() int { return p.g.N() }

// minNeighbor returns min{d_u : u ∈ neig(v)}.
func (p *Protocol) minNeighbor(c sim.Config[int], v int) int {
	ns := p.g.Neighbors(v)
	m := c[ns[0]]
	for _, u := range ns[1:] {
		if c[u] < m {
			m = c[u]
		}
	}
	return m
}

// EnabledRule implements sim.Protocol.
func (p *Protocol) EnabledRule(c sim.Config[int], v int) (sim.Rule, bool) {
	if v == p.root {
		if c[v] != 0 {
			return RuleRoot, true
		}
		return sim.NoRule, false
	}
	if c[v] != p.minNeighbor(c, v)+1 {
		return RuleMinPlusOne, true
	}
	return sim.NoRule, false
}

// Apply implements sim.Protocol.
func (p *Protocol) Apply(c sim.Config[int], v int, r sim.Rule) int {
	switch r {
	case RuleRoot:
		return 0
	case RuleMinPlusOne:
		return p.minNeighbor(c, v) + 1
	default:
		panic(fmt.Sprintf("bfstree: apply of unknown rule %d at vertex %d", r, v))
	}
}

// RandomState implements sim.Protocol: an arbitrary level in [0, n] (any
// non-negative value a transient fault may leave; values above n behave
// identically to n as far as the min+1 dynamics are concerned).
func (p *Protocol) RandomState(_ int, rng *rand.Rand) int { return rng.Intn(p.g.N() + 1) }

// RuleName implements sim.Protocol.
func (p *Protocol) RuleName(r sim.Rule) string {
	switch r {
	case RuleRoot:
		return "root"
	case RuleMinPlusOne:
		return "min+1"
	default:
		return fmt.Sprintf("rule(%d)", r)
	}
}

var _ sim.Protocol[int] = (*Protocol)(nil)

// Neighbors implements sim.Local: the root's guard reads only its own
// level, every other vertex's guard reads min over its graph neighbors.
func (p *Protocol) Neighbors(v int) []int {
	if v == p.root {
		return nil
	}
	return p.g.Neighbors(v)
}

var _ sim.Local = (*Protocol)(nil)

// Correct reports whether c assigns every vertex its true BFS distance
// from the root — the silent protocol's unique terminal configuration.
func (p *Protocol) Correct(c sim.Config[int]) bool {
	for v := 0; v < p.g.N(); v++ {
		if c[v] != p.g.Dist(p.root, v) {
			return false
		}
	}
	return true
}

// ErrorMass is the adversarial potential: total remaining level error plus
// the enabled count, so greedy adversaries prolong under-estimate climbs
// (each unit of under-estimate near a small-valued cycle costs a move).
func (p *Protocol) ErrorMass(c sim.Config[int]) float64 {
	mass := 0.0
	for v := 0; v < p.g.N(); v++ {
		d := c[v] - p.g.Dist(p.root, v)
		if d < 0 {
			d = -d
		}
		mass += float64(d)
	}
	enabled := 0
	for v := 0; v < p.g.N(); v++ {
		if _, ok := p.EnabledRule(c, v); ok {
			enabled++
		}
	}
	return mass + float64(enabled)/float64(p.g.N()+1)
}

// SyncHorizon returns a safe synchronous horizon: Θ(diam) claim with
// slack (under-estimates can climb for up to ~n steps on short-diameter
// graphs, so the slack includes n).
func (p *Protocol) SyncHorizon() int { return 3*p.g.N() + 3*p.g.Diameter() + 3 }

// UnfairHorizonMoves returns a safe move horizon under unfair daemons for
// the Θ(n²) claim.
func (p *Protocol) UnfairHorizonMoves() int { n := p.g.N(); return 4*n*n + 4*n }
