package netrun

// The shard-frame wire codec. One frame is the complete per-round
// contribution of one node: which shard vertices it activated and their
// next packed words, plus the pre-round configuration fingerprint that
// lets every receiver detect replica divergence before committing. The
// encoding is a fixed big-endian layout behind a length prefix — no
// reflection, no varints — because the decoder doubles as a fuzz target:
// DecodeFrame must reject every malformed input with an error, never a
// panic, and accept only encodings AppendFrame can produce (exact-length,
// no trailing bytes).
//
// Layout (all big-endian, after the transport's 4-byte length prefix):
//
//	magic   u32  0x53504E52 ("SPNR")
//	version u16  1
//	kind    u8   1=hello 2=round 3=bye
//	body         per kind:
//	  hello: node u32 | nodes u32 | specHash u64
//	  round: round u64 | node u32 | words u16 | prevFP u64 |
//	         enabled u32 | active u32 | selCount u32 |
//	         selCount × (vertex u32) | selCount*words × (state u64)
//	  bye:   node u32 | round u64
//
// Version bumps are breaking by design: a frame of a different version is
// rejected, not best-effort parsed — mixed-version rings would diverge.

import (
	"encoding/binary"
	"fmt"
)

// Wire constants. MaxFrame bounds the decoded payload so a corrupt
// length prefix cannot make a receiver allocate gigabytes: 1<<26 bytes
// holds a full-shard selection of ~1M single-word vertices.
const (
	frameMagic   uint32 = 0x53504E52 // "SPNR"
	frameVersion uint16 = 1
	// MaxFrame is the largest payload either side of the transport will
	// encode or accept.
	MaxFrame = 1 << 26
	// maxWords bounds the per-vertex word count a frame may claim; the
	// widest real protocol (a product of products) is far below it.
	maxWords = 1 << 10
)

// Kind discriminates frame payloads.
type Kind uint8

// Frame kinds: the handshake, the per-round shard contribution, and the
// clean-shutdown notice.
const (
	KindHello Kind = 1
	KindRound Kind = 2
	KindBye   Kind = 3
)

// String renders the kind for errors and logs.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindRound:
		return "round"
	case KindBye:
		return "bye"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Hello is the handshake frame: each side announces who it is and the
// hash of the Spec it was started from. A mismatched hash means the two
// processes would run different executions; the connection is refused.
type Hello struct {
	Node     uint32
	Nodes    uint32
	SpecHash uint64
}

// RoundFrame is one node's complete contribution to one BSP round.
type RoundFrame struct {
	// Round numbers the superstep, starting at 1; the barrier matches on
	// it exactly.
	Round uint64
	// Node is the sender's id.
	Node uint32
	// Words is the sender's per-vertex word count — a cheap codec
	// agreement check on every frame.
	Words uint16
	// PrevFP is the sender's configuration fingerprint *before* this
	// round: all participants must agree or the replicas have diverged.
	PrevFP uint64
	// Enabled counts the sender's shard vertices with an enabled guard
	// this round (the ring is terminal when the sum over nodes is zero).
	Enabled uint32
	// Active counts the sender's outstanding grants, giving receivers a
	// one-round-lagged view of global occupancy for capacity decisions.
	Active uint32
	// Sel lists the activated shard vertices in ascending order.
	Sel []uint32
	// Data holds the next packed words of each activated vertex,
	// vertex-major: Sel[i]'s words at Data[i*Words : (i+1)*Words].
	Data []int64
}

// Bye announces a clean shutdown after the sender's Round: the receiver
// stops its round loop instead of treating the closed connection as a
// fault.
type Bye struct {
	Node  uint32
	Round uint64
}

// Frame is the decoded union of the three payload kinds.
type Frame struct {
	Kind  Kind
	Hello Hello
	Round RoundFrame
	Bye   Bye
}

// headerLen is magic + version + kind.
const headerLen = 4 + 2 + 1

// AppendFrame appends f's wire encoding (without the transport length
// prefix) to dst and returns the extended slice. It validates the
// invariants DecodeFrame enforces, so an encode/decode round trip is
// identity on every frame it accepts.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, frameMagic)
	dst = binary.BigEndian.AppendUint16(dst, frameVersion)
	dst = append(dst, byte(f.Kind))
	switch f.Kind {
	case KindHello:
		dst = binary.BigEndian.AppendUint32(dst, f.Hello.Node)
		dst = binary.BigEndian.AppendUint32(dst, f.Hello.Nodes)
		dst = binary.BigEndian.AppendUint64(dst, f.Hello.SpecHash)
	case KindRound:
		r := &f.Round
		if r.Words == 0 || r.Words > maxWords {
			return nil, fmt.Errorf("netrun: frame words %d outside [1, %d]", r.Words, maxWords)
		}
		if len(r.Data) != len(r.Sel)*int(r.Words) {
			return nil, fmt.Errorf("netrun: frame data %d words ≠ %d selections × %d words",
				len(r.Data), len(r.Sel), r.Words)
		}
		for i := 1; i < len(r.Sel); i++ {
			if r.Sel[i] <= r.Sel[i-1] {
				return nil, fmt.Errorf("netrun: selection list not strictly ascending at index %d", i)
			}
		}
		if size := headerLen + 30 + len(r.Sel)*4 + len(r.Data)*8; size > MaxFrame {
			return nil, fmt.Errorf("netrun: frame %d bytes exceeds MaxFrame %d", size, MaxFrame)
		}
		dst = binary.BigEndian.AppendUint64(dst, r.Round)
		dst = binary.BigEndian.AppendUint32(dst, r.Node)
		dst = binary.BigEndian.AppendUint16(dst, r.Words)
		dst = binary.BigEndian.AppendUint64(dst, r.PrevFP)
		dst = binary.BigEndian.AppendUint32(dst, r.Enabled)
		dst = binary.BigEndian.AppendUint32(dst, r.Active)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Sel)))
		for _, v := range r.Sel {
			dst = binary.BigEndian.AppendUint32(dst, v)
		}
		for _, w := range r.Data {
			dst = binary.BigEndian.AppendUint64(dst, uint64(w))
		}
	case KindBye:
		dst = binary.BigEndian.AppendUint32(dst, f.Bye.Node)
		dst = binary.BigEndian.AppendUint64(dst, f.Bye.Round)
	default:
		return nil, fmt.Errorf("netrun: cannot encode frame kind %s", f.Kind)
	}
	return dst, nil
}

// DecodeFrame parses one payload (without the transport length prefix).
// It is strict: wrong magic, wrong version, unknown kind, short bodies,
// oversized counts and trailing bytes are all errors. It never panics on
// any input — FuzzFrameDecode holds it to that.
func DecodeFrame(p []byte) (*Frame, error) {
	f := new(Frame)
	if err := DecodeFrameInto(f, p); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeFrameInto parses one payload with DecodeFrame's exact semantics
// and strictness, but decodes into f, reusing the capacity of
// f.Round.Sel and f.Round.Data instead of allocating when they already
// fit — the receive pumps decode every round into per-peer scratch
// frames, so the steady-state decode path never touches the heap. Only
// the decoded kind's fields are written; fields of other kinds keep
// their previous contents. On error f is left partially written.
func DecodeFrameInto(f *Frame, p []byte) error {
	if len(p) < headerLen {
		return fmt.Errorf("netrun: frame %d bytes shorter than the %d-byte header", len(p), headerLen)
	}
	if m := binary.BigEndian.Uint32(p); m != frameMagic {
		return fmt.Errorf("netrun: bad frame magic %#08x", m)
	}
	if v := binary.BigEndian.Uint16(p[4:]); v != frameVersion {
		return fmt.Errorf("netrun: frame version %d, this build speaks %d", v, frameVersion)
	}
	f.Kind = Kind(p[6])
	body := p[headerLen:]
	switch f.Kind {
	case KindHello:
		if len(body) != 16 {
			return fmt.Errorf("netrun: hello body %d bytes, want 16", len(body))
		}
		f.Hello.Node = binary.BigEndian.Uint32(body)
		f.Hello.Nodes = binary.BigEndian.Uint32(body[4:])
		f.Hello.SpecHash = binary.BigEndian.Uint64(body[8:])
	case KindRound:
		const fixed = 8 + 4 + 2 + 8 + 4 + 4 + 4
		if len(body) < fixed {
			return fmt.Errorf("netrun: round body %d bytes shorter than the %d-byte fixed part", len(body), fixed)
		}
		r := &f.Round
		r.Round = binary.BigEndian.Uint64(body)
		r.Node = binary.BigEndian.Uint32(body[8:])
		r.Words = binary.BigEndian.Uint16(body[12:])
		r.PrevFP = binary.BigEndian.Uint64(body[14:])
		r.Enabled = binary.BigEndian.Uint32(body[22:])
		r.Active = binary.BigEndian.Uint32(body[26:])
		count := binary.BigEndian.Uint32(body[30:])
		if r.Words == 0 || r.Words > maxWords {
			return fmt.Errorf("netrun: frame words %d outside [1, %d]", r.Words, maxWords)
		}
		// Exact-length check before any allocation: count and words are
		// attacker-controlled, the length prefix is the truth.
		want := fixed + int64(count)*4 + int64(count)*int64(r.Words)*8
		if want > MaxFrame {
			return fmt.Errorf("netrun: round frame claims %d bytes, above MaxFrame %d", want, MaxFrame)
		}
		if int64(len(body)) != want {
			return fmt.Errorf("netrun: round body %d bytes, %d selections × %d words needs %d",
				len(body), count, r.Words, want)
		}
		// Capacity reuse: reslice scratch when it fits, allocate when it
		// does not (or on the first decode — a fresh make keeps the
		// non-nil empty-slice shape DecodeFrame has always produced for
		// count=0 frames).
		if r.Sel == nil || cap(r.Sel) < int(count) {
			r.Sel = make([]uint32, count)
		} else {
			r.Sel = r.Sel[:count]
		}
		off := fixed
		prev := int64(-1)
		for i := range r.Sel {
			r.Sel[i] = binary.BigEndian.Uint32(body[off:])
			if int64(r.Sel[i]) <= prev {
				return fmt.Errorf("netrun: selection list not strictly ascending at index %d", i)
			}
			prev = int64(r.Sel[i])
			off += 4
		}
		n := int(count) * int(r.Words)
		if r.Data == nil || cap(r.Data) < n {
			r.Data = make([]int64, n)
		} else {
			r.Data = r.Data[:n]
		}
		for i := range r.Data {
			r.Data[i] = int64(binary.BigEndian.Uint64(body[off:]))
			off += 8
		}
	case KindBye:
		if len(body) != 12 {
			return fmt.Errorf("netrun: bye body %d bytes, want 12", len(body))
		}
		f.Bye.Node = binary.BigEndian.Uint32(body)
		f.Bye.Round = binary.BigEndian.Uint64(body[4:])
	default:
		return fmt.Errorf("netrun: unknown frame kind %d", uint8(f.Kind))
	}
	return nil
}
