package core

import (
	"fmt"

	"specstab/internal/sim"
)

// Adversarial initial configurations: the constructive side of Theorems 2
// and 4. The "island" configuration below makes two antipodal vertices u, v
// privileged simultaneously at synchronous step t, for any
// t ≤ ⌊(diam−1)/2⌋, so the measured synchronous stabilization time of SSME
// is exactly ⌈diam/2⌉: Theorem 2's upper bound is attained, and the
// protocol sits on Theorem 4's universal lower bound.
//
// Construction (mirrors the island machinery of Definitions 5–6 and Lemmas
// 1–3): pick u, v with dist(u,v) = diam and disjoint balls
// B(u, Ru), B(v, Rv) with Ru + Rv < diam. Give every vertex of B(u, Ru) the
// clock value priv(u) − t and every vertex of B(v, Rv) the value
// priv(v) − t; set everything else to the reset value −α.
//
//   - Inside each island all values are equal, so every non-border vertex
//     fires NA at every synchronous step: the centers' clocks reach their
//     privilege values exactly at step t.
//   - Island borders see incomparable values (the two privilege values are
//     more than diam apart on the ring, and −α is not even a correct
//     value), so they fire RA; the reset wave erodes one layer per step —
//     the depth argument of Lemma 3 — and reaches a center only after
//     min(Ru, Rv) ≥ t steps.
//   - Outside vertices hold −α: CA needs all neighbors in initX, which
//     fails next to an island, so they idle harmlessly.

// MaxDoublePrivilegeStep returns ⌊(diam−1)/2⌋, the largest t for which
// DoublePrivilegeConfig can schedule a simultaneous double privilege at
// synchronous step t. It is −1 when the graph has a single vertex (no two
// vertices to conflict).
func (p *Protocol) MaxDoublePrivilegeStep() int {
	if p.g.N() < 2 {
		return -1
	}
	return (p.g.Diameter() - 1) / 2
}

// DoublePrivilegeConfig returns an initial configuration whose synchronous
// execution has (at least) two privileged vertices in configuration γ_t.
// Valid t range is 0 … MaxDoublePrivilegeStep().
func (p *Protocol) DoublePrivilegeConfig(t int) (sim.Config[int], error) {
	if p.g.N() < 2 {
		return nil, fmt.Errorf("core: double privilege impossible on a single vertex")
	}
	maxT := p.MaxDoublePrivilegeStep()
	if t < 0 || t > maxT {
		return nil, fmt.Errorf("core: step %d outside island budget [0,%d] on %s", t, maxT, p.g.Name())
	}
	u, v := p.g.Peripheral()
	d := p.g.Diameter()

	// Split the island radii so that ru + rv = diam − 1 (< diam keeps the
	// balls disjoint) and both are at least t.
	ru := (d - 1 + 1) / 2 // ⌈(d−1)/2⌉
	rv := (d - 1) / 2     // ⌊(d−1)/2⌋
	if ru < t || rv < t {
		return nil, fmt.Errorf("core: internal: island radii (%d,%d) below t=%d", ru, rv, t)
	}

	cfg := make(sim.Config[int], p.g.N())
	for w := range cfg {
		cfg[w] = p.x.Reset()
	}
	for _, w := range p.g.Ball(u, ru) {
		cfg[w] = p.PrivilegeValue(u) - t
	}
	for _, w := range p.g.Ball(v, rv) {
		cfg[w] = p.PrivilegeValue(v) - t
	}
	// Privilege values satisfy priv ≥ 2n > diam ≥ t, so the island values
	// stay inside stabX; assert rather than assume.
	if !p.x.InStab(cfg[u]) || !p.x.InStab(cfg[v]) {
		return nil, fmt.Errorf("core: internal: island value left stabX")
	}
	return cfg, nil
}

// WorstSyncConfig returns the island configuration achieving the latest
// possible double privilege, at synchronous step ⌊(diam−1)/2⌋; the
// synchronous execution from it stabilizes in exactly ⌈diam/2⌉ steps —
// SSME's optimum.
func (p *Protocol) WorstSyncConfig() (sim.Config[int], error) {
	t := p.MaxDoublePrivilegeStep()
	if t < 0 {
		return nil, fmt.Errorf("core: no adversarial configuration on a single vertex")
	}
	return p.DoublePrivilegeConfig(t)
}

// UniformConfig returns the configuration in which every register holds
// value x — legitimate whenever x ∈ stabX, and the natural "clean start".
func (p *Protocol) UniformConfig(x int) (sim.Config[int], error) {
	if err := p.x.Validate(x); err != nil {
		return nil, err
	}
	cfg := make(sim.Config[int], p.g.N())
	for v := range cfg {
		cfg[v] = x
	}
	return cfg, nil
}
