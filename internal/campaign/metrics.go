package campaign

import (
	"fmt"
	"strings"

	"specstab/internal/scenario"
)

// A metric is one named per-trial measurement extracted from an executed
// scenario.Run. Metrics come in three kinds, matching the three run
// shapes a scenario can take; asking a protocol-only run for a storm
// metric is a validation error, not a zero.

type metricKind int

const (
	metricEngine  metricKind = iota // any run
	metricLegit                     // needs a legitimacy predicate
	metricService                   // needs a workload
	metricStorm                     // needs a storm
)

type metricEntry struct {
	name    string
	desc    string
	kind    metricKind
	extract func(r *scenario.Run) float64
}

// metricRegistry lists every metric a campaign can name, in presentation
// order. Worst/mean/percentile reduction over trials happens downstream
// (reduce.go); extraction is always a single float per trial.
var metricRegistry = []metricEntry{
	{"steps", "engine steps executed", metricEngine,
		func(r *scenario.Run) float64 { return float64(r.Engine().Steps()) }},
	{"moves", "vertex moves executed", metricEngine,
		func(r *scenario.Run) float64 { return float64(r.Engine().Moves()) }},
	{"rounds", "asynchronous rounds completed", metricEngine,
		func(r *scenario.Run) float64 { return float64(r.Engine().Rounds()) }},
	{"guardEvals", "guard evaluations spent by the engine", metricEngine,
		func(r *scenario.Run) float64 { return float64(r.Engine().GuardEvals()) }},
	{"terminal", "1 when the run reached a terminal configuration", metricEngine,
		func(r *scenario.Run) float64 { return b2f(r.Terminal()) }},
	{"legit", "1 when the final configuration is legitimate", metricLegit,
		func(r *scenario.Run) float64 { return b2f(r.Probes().Legitimate()) }},
	{"grants", "critical sections served", metricService,
		func(r *scenario.Run) float64 { return float64(r.Service().Totals().Grants) }},
	{"grantsPerTick", "served throughput", metricService,
		func(r *scenario.Run) float64 { return r.Service().Totals().GrantsPerTick }},
	{"latP50", "median grant latency (ticks waited)", metricService,
		func(r *scenario.Run) float64 { return r.Service().Totals().LatP50 }},
	{"latP95", "95th-percentile grant latency", metricService,
		func(r *scenario.Run) float64 { return r.Service().Totals().LatP95 }},
	{"latP99", "99th-percentile grant latency", metricService,
		func(r *scenario.Run) float64 { return r.Service().Totals().LatP99 }},
	{"jainClients", "Jain fairness over client grant counts", metricService,
		func(r *scenario.Run) float64 { return r.Service().Totals().JainClients }},
	{"jainVertices", "Jain fairness over vertex grant counts", metricService,
		func(r *scenario.Run) float64 { return r.Service().Totals().JainVertices }},
	{"unsafeTicks", "ticks exposing more privileges than capacity", metricService,
		func(r *scenario.Run) float64 { return float64(r.Service().Totals().UnsafeTicks) }},
	{"resumed", "fraction of bursts whose grant stream resumed", metricStorm,
		func(r *scenario.Run) float64 {
			recs := r.Recoveries()
			if len(recs) == 0 {
				return 0
			}
			n := 0
			for _, rec := range recs {
				if rec.Resumed {
					n++
				}
			}
			return float64(n) / float64(len(recs))
		}},
	{"stallTicks", "worst grant-stream stall over bursts (client-observed recovery)", metricStorm,
		func(r *scenario.Run) float64 {
			worst := 0
			for _, rec := range r.Recoveries() {
				if rec.StallTicks > worst {
					worst = rec.StallTicks
				}
			}
			return float64(worst)
		}},
	{"legitTicks", "worst ticks to Γ-re-entry over bursts (−1 when unobserved)", metricStorm,
		func(r *scenario.Run) float64 {
			worst := -1
			for _, rec := range r.Recoveries() {
				if rec.LegitTicks > worst {
					worst = rec.LegitTicks
				}
			}
			return float64(worst)
		}},
	{"stormUnsafeTicks", "worst unsafe ticks over bursts", metricStorm,
		func(r *scenario.Run) float64 {
			var worst int64
			for _, rec := range r.Recoveries() {
				if rec.UnsafeTicks > worst {
					worst = rec.UnsafeTicks
				}
			}
			return float64(worst)
		}},
	{"preGrantsPerTick", "mean pre-burst throughput over bursts", metricStorm,
		func(r *scenario.Run) float64 {
			recs := r.Recoveries()
			if len(recs) == 0 {
				return 0
			}
			sum := 0.0
			for _, rec := range recs {
				sum += rec.Pre.GrantsPerTick
			}
			return sum / float64(len(recs))
		}},
	{"postLatP95", "worst post-burst p95 grant latency over bursts", metricStorm,
		func(r *scenario.Run) float64 {
			worst := 0.0
			for _, rec := range r.Recoveries() {
				if rec.Post.LatP95 > worst {
					worst = rec.Post.LatP95
				}
			}
			return worst
		}},
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// MetricNames returns the metric registry names in presentation order.
func MetricNames() []string {
	out := make([]string, len(metricRegistry))
	for i, e := range metricRegistry {
		out[i] = e.name
	}
	return out
}

// MetricDocs renders the metric catalogue, one line per metric.
func MetricDocs() string {
	var b strings.Builder
	for _, e := range metricRegistry {
		kind := ""
		switch e.kind {
		case metricLegit:
			kind = " (needs a legitimacy predicate)"
		case metricService:
			kind = " (needs a workload)"
		case metricStorm:
			kind = " (needs a storm)"
		}
		fmt.Fprintf(&b, "  %-18s %s%s\n", e.name, e.desc, kind)
	}
	return b.String()
}

func metricLookup(name string) (*metricEntry, error) {
	for i := range metricRegistry {
		if strings.EqualFold(metricRegistry[i].name, name) {
			return &metricRegistry[i], nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown metric %q (choose from: %s)", name, strings.Join(MetricNames(), ", "))
}

// resolvedMetrics resolves the campaign's metric list against the shape of
// a resolved cell scenario: explicit metrics win; the defaults are the
// standard columns for storm, service and protocol runs respectively.
func (c *Campaign) resolvedMetrics(sc *scenario.Scenario) []string {
	if len(c.Metrics) > 0 {
		return c.Metrics
	}
	switch {
	case sc.Storm != nil:
		return []string{"resumed", "stallTicks", "legitTicks", "stormUnsafeTicks", "preGrantsPerTick", "postLatP95"}
	case sc.Workload != nil:
		return []string{"grants", "grantsPerTick", "latP95", "jainClients", "unsafeTicks"}
	default:
		return []string{"steps", "moves", "rounds"}
	}
}

// checkMetrics validates the metric list against a cell's run shape.
func checkMetrics(names []string, sc *scenario.Scenario) ([]*metricEntry, error) {
	out := make([]*metricEntry, len(names))
	for i, name := range names {
		e, err := metricLookup(name)
		if err != nil {
			return nil, err
		}
		switch e.kind {
		case metricService:
			if sc.Workload == nil {
				return nil, fmt.Errorf("campaign: metric %q needs a workload, the base scenario has none", e.name)
			}
		case metricStorm:
			if sc.Storm == nil {
				return nil, fmt.Errorf("campaign: metric %q needs a storm, the base scenario has none", e.name)
			}
		}
		out[i] = e
	}
	return out, nil
}
