package main

// Smoke tests: flag parsing and one quick experiment through the
// scenario-routed harness.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "e1", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"### e1", "cherry"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "e5", "-quick", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ",") {
		t.Fatalf("CSV output has no commas:\n%s", out.String())
	}
}

func TestRunBackendsAgreeOnQuickExperiment(t *testing.T) {
	drive := func(backend string, workers string) string {
		var out bytes.Buffer
		if err := run([]string{"-experiment", "e2", "-quick", "-backend", backend, "-workers", workers}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	base := drive("generic", "1")
	for _, alt := range []struct{ backend, workers string }{
		{"flat", "1"}, {"generic", "8"}, {"flat", "8"}, {"auto", "2"},
	} {
		if got := drive(alt.backend, alt.workers); got != base {
			t.Fatalf("e2 output diverges for -backend %s -workers %s", alt.backend, alt.workers)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-experiment", "e99"},
		{"-backend", "nonsense"},
		{"-bogus"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("want error for %v", args)
		}
	}
}

func TestRunCampaignBuiltin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-campaign", "stall-curve"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"stall-curve", "stallTicks", "fit "} {
		if !strings.Contains(s, want) {
			t.Fatalf("campaign report missing %q:\n%s", want, s)
		}
	}
}

func TestRunCampaignDumpAndList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-campaign", "e13a-storm", "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"axes"`) {
		t.Fatalf("-dump did not emit campaign JSON:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"built-in campaigns:", "e13a-storm", "metrics:", "reduce statistics:", "experiments:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCampaignFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-campaign", "no-such-campaign"}, &out); err == nil {
		t.Fatal("unknown built-in accepted")
	}
	if err := run([]string{"-checkpoint", "x.journal"}, &out); err == nil {
		t.Fatal("-checkpoint without -campaign accepted")
	}
	if err := run([]string{"-dump"}, &out); err == nil {
		t.Fatal("-dump without -campaign accepted")
	}
}

func TestRunCampaignCSVStreamsRows(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-campaign", "stall-curve", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // header + 3 sizes
		t.Fatalf("%d CSV lines, want 4:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "n,trials,") {
		t.Fatalf("CSV header %q", lines[0])
	}
}

func TestRunCampaignRejectsShapingFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-campaign", "stall-curve", "-quick", "-experiment", "e3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "cannot be combined with -campaign") {
		t.Fatalf("err = %v, want the shaping-flag rejection", err)
	}
}

func TestByNameIsolation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-campaign", "stall-curve", "-seed", "999", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-campaign", "stall-curve", "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "999") {
		t.Fatalf("a -seed override leaked into the built-in registry:\n%s", out.String())
	}
}
