package sim

// The persistent shard pool behind forShards (DESIGN.md §11). The sharded
// phases of a synchronous step used to spawn fresh goroutines per call —
// three to four spawn/join cycles per step — which put goroutine creation
// and scheduler wake-up latency on the hot path. A Pool keeps its workers
// parked on per-worker wake channels instead: dispatching an epoch is one
// channel send per helper and one receive per helper to join, the shard
// ranges are handed out through an atomic cursor, and the caller itself
// participates in the work so a pool of width W runs W shards on W
// goroutines (W−1 helpers plus the caller).
//
// Pools carry no execution semantics: shard boundaries are computed by the
// caller from (k, shard size, worker bound) alone and every shard writes
// only disjoint index-addressed slots, so executions are bitwise identical
// for every pool width — including width 1 and the closed-pool inline
// fallback (the differential tests pin this).

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent team of shard workers. One Pool may be shared by
// any number of engines (campaign sweeps share one across every cell×trial
// engine): epochs are serialized internally, so concurrent callers are
// safe, and the worker goroutines are started once per Pool — lazily, on
// the first parallel epoch — rather than once per engine or per step.
//
// A Pool owned by an engine (Options.Pool == nil, Workers > 1) is closed
// by Engine.Close or, failing that, by a runtime cleanup when the engine
// is collected; explicitly shared pools are closed by their creator.
// Running on a closed Pool degrades to inline execution — never an error,
// never a deadlock — so Close is safe at any point.
type Pool struct {
	procs int

	// mu serializes epochs: one run at a time, which is also what makes a
	// single Pool shareable across engines.
	mu      sync.Mutex
	started bool
	closed  bool

	// Epoch state, written under mu before the wakes and read by workers
	// after their wake receive (the channel provides the happens-before
	// edge). cursor hands out shard indices; job is the epoch's work.
	job    func(shard int)
	shards int64
	cursor atomic.Int64

	wake []chan struct{} // one cap-1 channel per helper
	done chan struct{}   // barrier tokens, one per woken helper
	quit chan struct{}   // closed by Close; helpers exit
}

// NewPool creates a pool of the given width; workers <= 0 means
// runtime.GOMAXPROCS(0). No goroutines are started until the first
// parallel epoch, so constructing pools is free.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{procs: workers}
}

// Workers returns the pool width (helpers + the participating caller).
func (p *Pool) Workers() int { return p.procs }

// start spawns the helper goroutines. Called once, under mu.
func (p *Pool) start() {
	p.started = true
	p.done = make(chan struct{}, p.procs-1)
	p.quit = make(chan struct{})
	p.wake = make([]chan struct{}, p.procs-1)
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		go p.worker(ch)
	}
}

// worker parks on its wake channel; each wake is one epoch: drain the
// cursor, post a done token, park again. Close wins races via quit.
func (p *Pool) worker(wake chan struct{}) {
	for {
		select {
		case <-wake:
			p.drain()
			p.done <- struct{}{}
		case <-p.quit:
			return
		}
	}
}

// drain claims shards off the epoch cursor until none remain.
func (p *Pool) drain() {
	job, shards := p.job, p.shards
	for {
		sh := p.cursor.Add(1) - 1
		if sh >= shards {
			return
		}
		job(int(sh))
	}
}

// run executes job(0) … job(shards−1) across the pool and returns when all
// have completed. The caller participates; helpers beyond shards−1 are not
// woken. On a closed or width-1 pool the shards run inline on the caller.
// job must confine its writes to disjoint, shard-addressed slots — run
// guarantees completion order only, not execution order.
func (p *Pool) run(shards int, job func(shard int)) {
	if shards <= 0 {
		return
	}
	p.mu.Lock()
	if p.closed || p.procs <= 1 || shards == 1 {
		p.mu.Unlock()
		for sh := 0; sh < shards; sh++ {
			job(sh)
		}
		return
	}
	if !p.started {
		p.start()
	}
	p.job = job
	p.shards = int64(shards)
	p.cursor.Store(0)
	helpers := p.procs - 1
	if helpers > shards-1 {
		helpers = shards - 1
	}
	for i := 0; i < helpers; i++ {
		p.wake[i] <- struct{}{}
	}
	p.drain()
	for i := 0; i < helpers; i++ {
		<-p.done
	}
	p.job = nil
	p.mu.Unlock()
}

// Close terminates the helper goroutines. Idempotent and safe while other
// goroutines hold references: later run calls execute inline. Closing a
// never-started pool is free.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.started {
		close(p.quit)
	}
}
