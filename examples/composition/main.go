// Composition: the paper's conclusion asks for "a composition tool that
// automatically ensures speculative stabilization". This example runs the
// collateral product of two self-stabilizing protocols — min+1 BFS and
// asynchronous unison — on one graph and shows both stabilizing together
// under the synchronous daemon within the max of their individual bounds
// (and the fair-composition caveat that makes the unfair case subtle).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specstab/internal/bfstree"
	"specstab/internal/compose"
	"specstab/internal/daemon"
	"specstab/internal/graph"
	"specstab/internal/sim"
	"specstab/internal/unison"
)

func main() {
	g := graph.Torus(4, 4)
	bfs := bfstree.MustNew(g, 0)
	uni, err := unison.New(g, unison.SafeParams(g))
	if err != nil {
		log.Fatal(err)
	}
	prod := compose.MustNew[int, int](bfs, uni)
	fmt.Printf("composite protocol: %s\n", prod.Name())
	fmt.Printf("individual sync horizons: BFS %d, unison %d\n\n", bfs.SyncHorizon(), uni.SyncHorizon())

	type pair = compose.Pair[int, int]
	rng := rand.New(rand.NewSource(2013))
	for trial := 1; trial <= 5; trial++ {
		e := sim.MustEngine[pair](prod, daemon.NewSynchronous[pair](),
			sim.RandomConfig[pair](prod, rng), 1)
		bothLegit := func(c sim.Config[pair]) bool {
			return bfs.Correct(prod.ProjectA(c)) && uni.Legitimate(prod.ProjectB(c))
		}
		horizon := bfs.SyncHorizon() + uni.SyncHorizon()
		if _, err := e.Run(horizon, bothLegit); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trial %d: both components stabilized after %d synchronous steps (budget %d)\n",
			trial, e.Steps(), horizon)
		if !bothLegit(e.Current()) {
			log.Fatal("composition failed to stabilize — fair-composition theorem violated under sd")
		}
	}

	fmt.Println("\ncaveat: under an *unfair* daemon a scheduler may fire only unison moves forever,")
	fmt.Println("starving the BFS component — composition needs weak fairness (see internal/compose).")
}
